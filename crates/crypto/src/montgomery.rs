//! Montgomery (REDC) modular arithmetic.
//!
//! Every RSA sign/verify and every Miller-Rabin witness is a modular
//! exponentiation, and the seed implementation reduced each intermediate
//! product with a full division. Montgomery multiplication replaces that
//! division with two multiplications and a shift: operands are mapped
//! into the residue representation `aR mod n` (with `R = 2^(64k)` for a
//! `k`-limb modulus), where products reduce by the REDC interleaved
//! multiply-accumulate (CIOS) using only the precomputed single-limb
//! inverse `n' = -n^{-1} mod 2^64`.
//!
//! [`MontgomeryCtx`] carries the per-modulus precomputation (`n'` and
//! `R^2 mod n`) and implements fixed 4-bit-window exponentiation whose
//! inner loop is allocation-free: the window table is built once per
//! exponentiation and every multiply writes through reusable scratch
//! buffers. The CIOS words are the 64-bit limbs of [`BigUint`], so a
//! 1024-bit modulus runs 16-limb inner loops with `u128`
//! multiply-accumulates.
//!
//! Building a context costs one full division (`R^2 mod n`), which is
//! why the RSA key types ([`crate::rsa`]) cache one context per key
//! instead of rebuilding it on every sign/verify.
//!
//! Montgomery reduction requires an odd modulus; [`MontgomeryCtx::new`]
//! returns `None` otherwise and callers fall back to the reference
//! square-and-multiply path.

use crate::bigint::BigUint;

/// Bits per limb window processed by the fixed-window exponentiation.
const WINDOW_BITS: usize = 4;
/// Size of the window table (`2^WINDOW_BITS`).
const TABLE_LEN: usize = 1 << WINDOW_BITS;
/// Exponents at or below this bit length skip the window table: the
/// table build costs `TABLE_LEN - 2` multiplies, which a short (or
/// sparse, like 65537) exponent never earns back.
const SHORT_EXPONENT_BITS: usize = 64;

/// Per-modulus Montgomery precomputation: the modulus limbs, the negated
/// single-limb inverse `n' = -n^{-1} mod 2^64`, and `R^2 mod n` used to
/// map values into the Montgomery domain.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// Modulus limbs, little-endian, length `k`.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n` where `R = 2^(64k)`, as `k` limbs.
    r2: Vec<u64>,
}

/// A residue in the Montgomery domain (`aR mod n`), tied to the
/// [`MontgomeryCtx`] that produced it. Stored as exactly `k` limbs.
///
/// The map `a -> aR mod n` is a bijection on residues, so comparing two
/// `MontElem`s for equality compares the underlying residues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontElem {
    limbs: Vec<u64>,
}

/// Reusable buffers for a sequence of Montgomery operations against one
/// context: the CIOS scratch, a swap buffer, the fixed-window table, and
/// the current working element. Allocated once (all sizes are functions
/// of the context's limb count `k`), then shared by every
/// load/pow/square in a chain — Miller-Rabin drives its whole witness
/// sequence through one workspace with zero per-operation allocation.
#[derive(Debug, Default)]
pub struct MontWorkspace {
    /// CIOS accumulator, `k + 2` limbs (or `2k + 2` after
    /// [`MontgomeryCtx::prepare`], which unlocks the squaring-specialised
    /// reduction).
    scratch: Vec<u64>,
    /// Swap target for in-place multiplies, `k` limbs.
    tmp: Vec<u64>,
    /// Flat window table, grown on first use by [`MontgomeryCtx::pow_in_place`]
    /// (`k` limbs for short exponents, `(TABLE_LEN - 1) * k` for the
    /// windowed path; entry `i` holds `base^(i+1)`). Starts empty so
    /// conversion-only workspaces — and the short-exponent verify path —
    /// never pay for the full table.
    table: Vec<u64>,
    /// The current working element, `k` limbs.
    value: Vec<u64>,
    /// Parking slot for [`MontgomeryCtx::stash_value`], `k` limbs once
    /// used. Lets a chain compare two computed elements (e.g. a verify
    /// comparing `s^e` against the loaded digest) without allocating.
    hold: Vec<u64>,
}

impl MontWorkspace {
    /// An empty workspace with no buffers allocated. It must be fitted to
    /// a context with [`MontgomeryCtx::prepare`] before use — the batch
    /// verification paths create one workspace up front and re-fit it as
    /// they walk keys of possibly different widths.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MontgomeryCtx {
    /// Builds a context for `modulus`. Returns `None` unless the modulus
    /// is odd and greater than one (REDC requires `gcd(n, 2^64) = 1`).
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();
        // Newton's iteration doubles correct low bits each step: an odd
        // word is its own inverse modulo 8, and six steps lift those
        // three correct bits past 64.
        let mut inv: u64 = n[0];
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R^2 mod n = 2^(128k) mod n; one division at setup time.
        let r2 = BigUint::one().shl(128 * k).div_rem_knuth(modulus).1;
        let mut r2_limbs = r2.limbs().to_vec();
        r2_limbs.resize(k, 0);
        Some(MontgomeryCtx {
            n,
            n0_inv,
            r2: r2_limbs,
        })
    }

    /// Number of limbs in the modulus.
    fn k(&self) -> usize {
        self.n.len()
    }

    /// The modulus as a `BigUint`.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// Builds a reusable workspace sized for this context.
    pub fn workspace(&self) -> MontWorkspace {
        let k = self.k();
        MontWorkspace {
            scratch: vec![0u64; k + 2],
            tmp: vec![0u64; k],
            table: Vec::new(),
            value: vec![0u64; k],
            hold: Vec::new(),
        }
    }

    /// Fits `ws` to this context, reallocating only when the limb count
    /// actually changed. This is what lets one workspace serve a whole
    /// batch of keys: the batched verification paths call `prepare` per
    /// key and pay nothing when consecutive keys share a width (every
    /// simulation key at one `modulus_bits` does).
    ///
    /// A prepared workspace carries a `2k + 2`-limb scratch — large
    /// enough for the squaring-specialised reduction
    /// that [`Self::pow_in_place`] then uses for its squarings.
    pub fn prepare(&self, ws: &mut MontWorkspace) {
        let k = self.k();
        if ws.value.len() != k {
            ws.value.clear();
            ws.value.resize(k, 0);
            ws.tmp.clear();
            ws.tmp.resize(k, 0);
            ws.hold.clear();
            ws.hold.resize(k, 0);
            ws.table.clear();
        }
        if ws.scratch.len() < 2 * k + 2 {
            ws.scratch.clear();
            ws.scratch.resize(2 * k + 2, 0);
        }
    }

    /// Parks the working element in the workspace's hold slot (swapping
    /// with whatever was parked there), so a second chain — for example
    /// loading a comparison target — can run without clobbering it.
    pub fn stash_value(&self, ws: &mut MontWorkspace) {
        let k = self.k();
        if ws.hold.len() != k {
            ws.hold.clear();
            ws.hold.resize(k, 0);
        }
        std::mem::swap(&mut ws.value, &mut ws.hold);
    }

    /// Whether the working element equals the last [`Self::stash_value`]d
    /// element. Both are Montgomery-domain residues of this context, and
    /// the domain map is a bijection, so this compares the underlying
    /// residues.
    pub fn value_equals_stash(&self, ws: &MontWorkspace) -> bool {
        ws.value == ws.hold
    }

    /// Whether `a` is already below the modulus (limb-level; avoids
    /// materialising the modulus as a `BigUint`).
    fn below_modulus(&self, a: &BigUint) -> bool {
        let limbs = a.limbs();
        match limbs.len().cmp(&self.k()) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => Self::less_than(limbs, &self.n),
        }
    }

    /// Loads `a` into the workspace's working element (the Montgomery
    /// image `aR mod n`), reducing modulo `n` first if needed.
    pub fn load(&self, a: &BigUint, ws: &mut MontWorkspace) {
        let k = self.k();
        if self.below_modulus(a) {
            ws.tmp[..a.limbs().len()].copy_from_slice(a.limbs());
            ws.tmp[a.limbs().len()..k].fill(0);
        } else {
            let reduced = a.div_rem_knuth(&self.modulus()).1;
            ws.tmp[..reduced.limbs().len()].copy_from_slice(reduced.limbs());
            ws.tmp[reduced.limbs().len()..k].fill(0);
        }
        self.mul_into_split(true, ws);
    }

    /// Loads a big-endian byte string into the working element without
    /// allocating. Values up to `k` limbs wide skip the reduction
    /// division even when they exceed `n`: the CIOS accumulator bound
    /// (`t < b + n`) depends only on the multiplicand `r2 < n`, never on
    /// the scanned operand, so the conversion multiply reduces any
    /// `k`-limb input exactly. Wider inputs (a 32-byte digest against a
    /// sub-256-bit modulus) take the allocating [`Self::load`] path.
    pub fn load_bytes_be(&self, bytes: &[u8], ws: &mut MontWorkspace) {
        let k = self.k();
        let first = bytes.iter().position(|&b| b != 0).unwrap_or(bytes.len());
        let bytes = &bytes[first..];
        if bytes.len() > k * 8 {
            self.load(&BigUint::from_bytes_be(bytes), ws);
            return;
        }
        ws.tmp[..k].fill(0);
        for (i, chunk) in bytes.rchunks(8).enumerate() {
            let mut limb = 0u64;
            for &byte in chunk {
                limb = (limb << 8) | byte as u64;
            }
            ws.tmp[i] = limb;
        }
        self.mul_into_split(true, ws);
    }

    /// `ws.value = ws.tmp * r2` (used by [`Self::load`]) or
    /// `ws.value = ws.value^2` — both need `value` and `tmp` split from
    /// the borrow on `self`.
    fn mul_into_split(&self, from_tmp: bool, ws: &mut MontWorkspace) {
        let MontWorkspace {
            scratch,
            tmp,
            value,
            ..
        } = ws;
        if from_tmp {
            self.mul_into(tmp, &self.r2, scratch, value);
        } else {
            self.square_into(value, scratch, tmp);
            std::mem::swap(value, tmp);
        }
    }

    /// Squares the workspace's working element in place.
    pub fn square_in_place(&self, ws: &mut MontWorkspace) {
        self.mul_into_split(false, ws);
    }

    /// Whether the workspace's working element equals `elem`.
    pub fn element_equals(&self, ws: &MontWorkspace, elem: &MontElem) -> bool {
        ws.value == elem.limbs
    }

    /// Maps `a` into the Montgomery domain (`aR mod n`), reducing `a`
    /// modulo `n` first if needed.
    pub fn convert(&self, a: &BigUint) -> MontElem {
        let mut ws = self.workspace();
        self.load(a, &mut ws);
        MontElem { limbs: ws.value }
    }

    /// The working element mapped back to an ordinary residue (a
    /// convenience over [`Self::recover`] for workspace chains).
    pub fn recover_value(&self, ws: &MontWorkspace) -> BigUint {
        self.recover(&MontElem {
            limbs: ws.value.clone(),
        })
    }

    /// Maps a Montgomery-domain element back to an ordinary residue.
    pub fn recover(&self, a: &MontElem) -> BigUint {
        let one = {
            let mut v = vec![0u64; self.k()];
            v[0] = 1;
            v
        };
        let mut out = vec![0u64; self.k()];
        let mut scratch = vec![0u64; self.k() + 2];
        self.mul_into(&a.limbs, &one, &mut scratch, &mut out);
        BigUint::from_limbs(out)
    }

    /// The multiplicative identity in the Montgomery domain (`R mod n`).
    pub fn one(&self) -> MontElem {
        self.convert(&BigUint::one())
    }

    /// Montgomery product of two domain elements.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let mut out = vec![0u64; self.k()];
        let mut scratch = vec![0u64; self.k() + 2];
        self.mul_into(&a.limbs, &b.limbs, &mut scratch, &mut out);
        MontElem { limbs: out }
    }

    /// Exponentiation in the Montgomery domain.
    ///
    /// Long exponents (private/CRT exponents, Miller-Rabin's `d`) use
    /// fixed 4-bit windows: the table (`base^0 .. base^15`) is built
    /// once, then four squarings and at most one table multiply per
    /// window. Short exponents — above all the RSA public exponent
    /// 65537 on the verify path — cannot amortize the 14-multiply table
    /// build, so they run plain left-to-right square-and-multiply (one
    /// multiply per set bit). Both loops go through preallocated scratch
    /// buffers; no allocation per step.
    pub fn pow(&self, base: &MontElem, exponent: &BigUint) -> MontElem {
        let mut ws = self.workspace();
        ws.value.copy_from_slice(&base.limbs);
        self.pow_in_place(exponent, &mut ws);
        MontElem { limbs: ws.value }
    }

    /// Exponentiation in place: `ws.value = ws.value^exponent`. The
    /// workspace's table, scratch and swap buffers are reused across
    /// calls — no allocation (see [`Self::pow`] for the algorithm).
    pub fn pow_in_place(&self, exponent: &BigUint, ws: &mut MontWorkspace) {
        let k = self.k();
        if exponent.is_zero() {
            ws.value.copy_from_slice(&self.one().limbs);
            return;
        }
        let bits = exponent.bit_len();
        let table_limbs = if bits <= SHORT_EXPONENT_BITS {
            k
        } else {
            (TABLE_LEN - 1) * k
        };
        if ws.table.len() < table_limbs {
            ws.table.resize(table_limbs, 0);
        }
        let MontWorkspace {
            scratch,
            tmp,
            table,
            value,
            ..
        } = ws;

        if bits <= SHORT_EXPONENT_BITS {
            // The base lives in the table's first slot so `value` can be
            // squared in place over it.
            table[..k].copy_from_slice(value);
            for i in (0..bits - 1).rev() {
                self.square_into(value, scratch, tmp);
                std::mem::swap(value, tmp);
                if exponent.bit(i) {
                    self.mul_into(value, &table[..k], scratch, tmp);
                    std::mem::swap(value, tmp);
                }
            }
            return;
        }

        // table[i] = base^(i+1) in the Montgomery domain; digit 0 never
        // multiplies, so base^0 needs no entry.
        table[..k].copy_from_slice(value);
        for i in 1..TABLE_LEN - 1 {
            let (built, next) = table.split_at_mut(i * k);
            self.mul_into(&built[(i - 1) * k..], &built[..k], scratch, &mut next[..k]);
        }

        let windows = bits.div_ceil(WINDOW_BITS);
        // The top window holds the exponent's most significant bit, so
        // its digit is never zero.
        let top = Self::window(exponent, windows - 1);
        value.copy_from_slice(&table[(top - 1) * k..top * k]);
        for w in (0..windows - 1).rev() {
            for _ in 0..WINDOW_BITS {
                self.square_into(value, scratch, tmp);
                std::mem::swap(value, tmp);
            }
            let digit = Self::window(exponent, w);
            if digit != 0 {
                self.mul_into(value, &table[(digit - 1) * k..digit * k], scratch, tmp);
                std::mem::swap(value, tmp);
            }
        }
    }

    /// Convenience: full modular exponentiation `base^exponent mod n`
    /// through the Montgomery domain.
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        self.recover(&self.pow(&self.convert(base), exponent))
    }

    /// Extracts the `w`-th 4-bit window of `exponent` (window 0 holds the
    /// least significant bits). Windows never straddle a limb because 64
    /// is a multiple of [`WINDOW_BITS`].
    fn window(exponent: &BigUint, w: usize) -> usize {
        let bit = w * WINDOW_BITS;
        let limbs = exponent.limbs();
        let limb = limbs.get(bit / 64).copied().unwrap_or(0);
        ((limb >> (bit % 64)) & (TABLE_LEN as u64 - 1)) as usize
    }

    /// Squares `a` into `out` (`out = a^2 * R^{-1} mod n`), dispatching
    /// to the squaring-specialised reduction when the scratch is large
    /// enough (a [`Self::prepare`]d workspace) and to the generic CIOS
    /// multiply otherwise. Squarings are ~84% of a 65537-exponent verify
    /// (16 of 19 reductions), which is why the batch-verify paths prepare
    /// their workspaces.
    #[inline]
    fn square_into(&self, a: &[u64], scratch: &mut [u64], out: &mut [u64]) {
        if scratch.len() > 2 * self.k() {
            self.sqr_into(a, scratch, out);
        } else {
            self.mul_into(a, a, scratch, out);
        }
    }

    /// SOS Montgomery squaring: `out = a^2 * R^{-1} mod n`.
    ///
    /// Computes the full `2k`-limb square first — off-diagonal partial
    /// products once, doubled, then the diagonal — and Montgomery-reduces
    /// it in a second pass. The symmetry saves nearly half the limb
    /// multiplies of a generic CIOS multiply. `scratch` must hold at
    /// least `2k + 1` limbs.
    fn sqr_into(&self, a: &[u64], scratch: &mut [u64], out: &mut [u64]) {
        let k = self.k();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(out.len(), k);
        debug_assert!(scratch.len() > 2 * k);
        if k == 2 {
            // The unrolled two-limb CIOS already keeps everything in
            // registers; the split square/reduce passes would only add
            // memory traffic.
            return self.mul_into_k2(a, a, out);
        }
        if k == 4 {
            // Same story at four limbs: the unrolled CIOS beats the
            // split square/reduce passes, whose savings only outgrow
            // the extra memory traffic at wider moduli.
            return self.mul_into_k4(a, a, out);
        }
        let t = &mut scratch[..2 * k + 1];
        t.fill(0);

        // Off-diagonal products a[i] * a[j] for i < j, each needed twice.
        // Iteration i writes indices i+1+i .. i+k; its carry lands in
        // t[i + k], which no earlier iteration has touched.
        for i in 0..k {
            let ai = a[i] as u128;
            let mut carry: u128 = 0;
            for j in i + 1..k {
                let s = t[i + j] as u128 + ai * a[j] as u128 + carry;
                t[i + j] = s as u64;
                carry = s >> 64;
            }
            t[i + k] = carry as u64;
        }

        // Double the off-diagonal sum (top limb t[2k] starts at zero and
        // receives the shifted-out bit).
        let mut top: u64 = 0;
        for limb in t.iter_mut().take(2 * k) {
            let shifted = (*limb << 1) | top;
            top = *limb >> 63;
            *limb = shifted;
        }
        t[2 * k] = top;

        // Add the diagonal squares.
        let mut carry: u128 = 0;
        for i in 0..k {
            let ai = a[i] as u128;
            let s = t[2 * i] as u128 + ai * ai + carry;
            t[2 * i] = s as u64;
            let s2 = t[2 * i + 1] as u128 + (s >> 64);
            t[2 * i + 1] = s2 as u64;
            carry = s2 >> 64;
        }
        let s = t[2 * k] as u128 + carry;
        t[2 * k] = s as u64;
        debug_assert_eq!(s >> 64, 0);

        // Montgomery reduction of the 2k-limb square: each step clears
        // t[i] exactly, so after k steps the result sits in t[k ..= 2k].
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0_inv) as u128;
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[i + j] as u128 + m * self.n[j] as u128 + carry;
                t[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                debug_assert!(idx <= 2 * k);
                let s = t[idx] as u128 + carry;
                t[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }

        // a < n keeps the reduced value below 2n; one conditional
        // subtract brings it into [0, n). t[2k] is the overflow limb.
        let needs_sub = t[2 * k] != 0 || !Self::less_than(&t[k..2 * k], &self.n);
        if needs_sub {
            let mut borrow: u64 = 0;
            for j in 0..k {
                let (d1, b1) = t[k + j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 | b2) as u64;
            }
            debug_assert_eq!(borrow, t[2 * k]);
        } else {
            out.copy_from_slice(&t[k..2 * k]);
        }
    }

    /// CIOS Montgomery multiply-accumulate: `out = a * b * R^{-1} mod n`.
    ///
    /// `a`, `b` and `out` are `k`-limb little-endian buffers holding
    /// values below `n`; `scratch` must hold `k + 2` limbs. No heap
    /// allocation occurs here — this is the innermost loop of every
    /// exponentiation.
    fn mul_into(&self, a: &[u64], b: &[u64], scratch: &mut [u64], out: &mut [u64]) {
        let k = self.k();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        debug_assert_eq!(out.len(), k);
        debug_assert!(scratch.len() >= k + 2);
        if k == 2 {
            // Two-limb moduli (the CRT primes of 256-bit simulation keys,
            // every Miller-Rabin witness behind them) are the hottest
            // case: a fully unrolled CIOS keeps the accumulator in
            // registers instead of walking the scratch slice.
            return self.mul_into_k2(a, b, out);
        }
        if k == 4 {
            // Four-limb moduli are every 256-bit verify — the default
            // upload-signature width — so they get the same treatment.
            return self.mul_into_k4(a, b, out);
        }
        let t = &mut scratch[..k + 2];
        t.fill(0);

        for &ai in a.iter().take(k) {
            // t += a[i] * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m = t[0] * n' mod 2^64; t = (t + m * n) / 2^64. Adding
            // m * n clears t[0] exactly, so the shift drops no bits.
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + m as u128 * self.n[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
            t[k + 1] = 0;
        }

        // The CIOS invariant keeps t < 2n; one conditional subtract
        // brings the result into [0, n).
        let needs_sub = t[k] != 0 || !Self::less_than(&t[..k], &self.n);
        if needs_sub {
            let mut borrow: u64 = 0;
            for j in 0..k {
                let (d1, b1) = t[j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 | b2) as u64;
            }
            debug_assert_eq!(borrow, t[k]);
        } else {
            out.copy_from_slice(&t[..k]);
        }
    }

    /// Fully unrolled CIOS for `k == 2`: same recurrence as the generic
    /// loop, with the four-limb accumulator held in scalars.
    #[inline]
    fn mul_into_k2(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let (b0, b1) = (b[0], b[1]);
        let (n0, n1) = (self.n[0], self.n[1]);

        let mut t0: u64 = 0;
        let mut t1: u64 = 0;
        let mut t2: u64 = 0;
        for &ai in &a[..2] {
            // t += a_i * b
            let s0 = t0 as u128 + ai as u128 * b0 as u128;
            let s1 = t1 as u128 + ai as u128 * b1 as u128 + (s0 >> 64);
            let s2 = t2 as u128 + (s1 >> 64);
            t0 = s0 as u64;
            t1 = s1 as u64;
            t2 = s2 as u64;
            let t3 = (s2 >> 64) as u64;

            // m = t0 * n' mod 2^64; t = (t + m * n) / 2^64.
            let m = t0.wrapping_mul(self.n0_inv);
            let r0 = t0 as u128 + m as u128 * n0 as u128;
            debug_assert_eq!(r0 as u64, 0);
            let r1 = t1 as u128 + m as u128 * n1 as u128 + (r0 >> 64);
            let r2 = t2 as u128 + (r1 >> 64);
            t0 = r1 as u64;
            t1 = r2 as u64;
            t2 = t3.wrapping_add((r2 >> 64) as u64);
        }

        // t < 2n, one conditional subtract (t2 is the overflow limb).
        if t2 != 0 || (t1, t0) >= (n1, n0) {
            let (d0, borrow0) = t0.overflowing_sub(n0);
            let (d1, borrow1a) = t1.overflowing_sub(n1);
            let (d1, borrow1b) = d1.overflowing_sub(borrow0 as u64);
            debug_assert_eq!((borrow1a | borrow1b) as u64, t2);
            out[0] = d0;
            out[1] = d1;
        } else {
            out[0] = t0;
            out[1] = t1;
        }
    }

    /// Fully unrolled four-limb CIOS: same algorithm as the general
    /// loop, with the five-limb accumulator held in scalars. 256-bit
    /// moduli are the default signature-verification width, so this is
    /// the inner loop of every upload check a round performs.
    #[inline]
    fn mul_into_k4(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
        let (n0, n1, n2, n3) = (self.n[0], self.n[1], self.n[2], self.n[3]);

        let mut t0: u64 = 0;
        let mut t1: u64 = 0;
        let mut t2: u64 = 0;
        let mut t3: u64 = 0;
        let mut t4: u64 = 0;
        for &ai in &a[..4] {
            // t += a_i * b
            let s0 = t0 as u128 + ai as u128 * b0 as u128;
            let s1 = t1 as u128 + ai as u128 * b1 as u128 + (s0 >> 64);
            let s2 = t2 as u128 + ai as u128 * b2 as u128 + (s1 >> 64);
            let s3 = t3 as u128 + ai as u128 * b3 as u128 + (s2 >> 64);
            let s4 = t4 as u128 + (s3 >> 64);
            t0 = s0 as u64;
            t1 = s1 as u64;
            t2 = s2 as u64;
            t3 = s3 as u64;
            t4 = s4 as u64;
            let t5 = (s4 >> 64) as u64;

            // m = t0 * n' mod 2^64; t = (t + m * n) / 2^64.
            let m = t0.wrapping_mul(self.n0_inv);
            let r0 = t0 as u128 + m as u128 * n0 as u128;
            debug_assert_eq!(r0 as u64, 0);
            let r1 = t1 as u128 + m as u128 * n1 as u128 + (r0 >> 64);
            let r2 = t2 as u128 + m as u128 * n2 as u128 + (r1 >> 64);
            let r3 = t3 as u128 + m as u128 * n3 as u128 + (r2 >> 64);
            let r4 = t4 as u128 + (r3 >> 64);
            t0 = r1 as u64;
            t1 = r2 as u64;
            t2 = r3 as u64;
            t3 = r4 as u64;
            t4 = t5.wrapping_add((r4 >> 64) as u64);
        }

        // t < 2n, one conditional subtract (t4 is the overflow limb).
        if t4 != 0 || (t3, t2, t1, t0) >= (n3, n2, n1, n0) {
            let mut borrow: u64 = 0;
            for (slot, (t, n)) in out.iter_mut().zip([(t0, n0), (t1, n1), (t2, n2), (t3, n3)]) {
                let (d1, b1) = t.overflowing_sub(n);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *slot = d2;
                borrow = (b1 | b2) as u64;
            }
            debug_assert_eq!(borrow, t4);
        } else {
            out[0] = t0;
            out[1] = t1;
            out[2] = t2;
            out[3] = t3;
        }
    }

    /// Limb-slice comparison `a < b` for equal-length buffers.
    fn less_than(a: &[u64], b: &[u64]) -> bool {
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryCtx::new(&big(10)).is_none());
        assert!(MontgomeryCtx::new(&big(1)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&big(9)).is_some());
    }

    #[test]
    fn convert_recover_round_trip() {
        let ctx = MontgomeryCtx::new(&big(1_000_003)).unwrap();
        for v in [0u64, 1, 2, 999_999, 1_000_002, 123_456] {
            assert_eq!(ctx.recover(&ctx.convert(&big(v))), big(v));
        }
        // Values at or above the modulus reduce first.
        assert_eq!(ctx.recover(&ctx.convert(&big(1_000_003))), big(0));
        assert_eq!(ctx.recover(&ctx.convert(&big(2_000_007))), big(1));
    }

    #[test]
    fn mul_matches_modmul() {
        let _guard = engine::mode_lock();
        let m = big(0xffff_ffff_ffff_ffc5); // largest prime below 2^64
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for (a, b) in [
            (3u64, 5u64),
            (0xdead_beef_dead_beef, 0xcafe_babe_cafe_babe),
            (1, 0),
        ] {
            let expected = big(a).modmul(&big(b), &m);
            let got = ctx.recover(&ctx.mul(&ctx.convert(&big(a)), &ctx.convert(&big(b))));
            assert_eq!(got, expected, "a={a} b={b}");
        }
    }

    #[test]
    fn modpow_matches_reference_small() {
        let _guard = engine::mode_lock();
        let m = big(497); // odd composite
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.modpow(&big(4), &big(13)), big(445));
        assert_eq!(ctx.modpow(&big(7), &BigUint::zero()), BigUint::one());
        let p = big(1_000_000_007);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        assert_eq!(
            ctx.modpow(&big(123456), &big(1_000_000_006)),
            BigUint::one()
        );
    }

    #[test]
    fn equality_in_domain_matches_equality_of_residues() {
        let ctx = MontgomeryCtx::new(&big(1_000_003)).unwrap();
        assert_eq!(ctx.convert(&big(42)), ctx.convert(&big(42)));
        assert_ne!(ctx.convert(&big(42)), ctx.convert(&big(43)));
        assert_eq!(ctx.one(), ctx.convert(&big(1)));
    }

    #[test]
    fn four_limb_modulus_uses_the_unrolled_path_correctly() {
        let _guard = engine::mode_lock();
        // 2^255 - 19: exactly four limbs, prime.
        let m = BigUint::one().shl(255).sub(&BigUint::from_u32(19));
        let ctx = MontgomeryCtx::new(&m).unwrap();
        // Mixed-magnitude operands exercise every carry chain of the
        // unrolled accumulator.
        let a = BigUint::one()
            .shl(254)
            .add(&BigUint::from_decimal_str("987654321987654321987654321").unwrap());
        let b = BigUint::one().shl(200).sub(&BigUint::from_u32(1));
        assert_eq!(ctx.recover(&ctx.convert(&a)), a.rem(&m));
        let got = ctx.recover(&ctx.mul(&ctx.convert(&a), &ctx.convert(&b)));
        assert_eq!(got, a.modmul(&b, &m));
        // Fermat: a^(m-1) ≡ 1 (mod m) for this prime modulus.
        assert_eq!(ctx.modpow(&a, &m.sub(&BigUint::one())), BigUint::one());
        // Squaring dispatches through the same kernel.
        let mut ws = ctx.workspace();
        ctx.prepare(&mut ws);
        ctx.load(&a, &mut ws);
        ctx.square_in_place(&mut ws);
        assert!(ctx.element_equals(&ws, &ctx.convert(&a.modmul(&a, &m))));
    }

    #[test]
    fn load_bytes_matches_load_including_unreduced_and_wide_inputs() {
        // A modulus with its top bit clear, so a random 32-byte digest
        // frequently exceeds it — the no-division path must still land
        // on the canonical image.
        let m = BigUint::one().shl(255).sub(&BigUint::from_u32(19));
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let mut ws_bytes = ctx.workspace();
        let mut ws_ref = ctx.workspace();
        ctx.prepare(&mut ws_bytes);
        ctx.prepare(&mut ws_ref);
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x00, 0x00],
            vec![0x7f],
            vec![0xff; 32],                           // 2^256 - 1: above n, k limbs
            vec![0x01; 31],                           // below n
            [vec![0x00; 3], vec![0xab; 29]].concat(), // leading zeros
            vec![0xff; 40],                           // wider than k limbs: fallback path
        ];
        for bytes in cases {
            ctx.load_bytes_be(&bytes, &mut ws_bytes);
            ctx.load(&BigUint::from_bytes_be(&bytes), &mut ws_ref);
            assert_eq!(
                ctx.recover_value(&ws_bytes),
                ctx.recover_value(&ws_ref),
                "bytes = {bytes:02x?}"
            );
        }
    }

    #[test]
    fn two_limb_modulus_uses_the_unrolled_path_correctly() {
        let _guard = engine::mode_lock();
        // 2^127 - 1 is a Mersenne prime: exactly two limbs.
        let m = BigUint::one().shl(127).sub(&BigUint::one());
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let a = BigUint::from_decimal_str("123456789012345678901234567890123456").unwrap();
        let b = BigUint::from_decimal_str("98765432109876543210987654321").unwrap();
        assert_eq!(ctx.recover(&ctx.convert(&a)), a.rem(&m));
        let got = ctx.recover(&ctx.mul(&ctx.convert(&a), &ctx.convert(&b)));
        assert_eq!(got, a.modmul(&b, &m));
        // Fermat: a^(m-1) ≡ 1 (mod m) for this prime modulus.
        assert_eq!(ctx.modpow(&a, &m.sub(&BigUint::one())), BigUint::one());
        // And the workspace chain agrees with the one-shot ops.
        let mut ws = ctx.workspace();
        ctx.load(&a, &mut ws);
        ctx.pow_in_place(&BigUint::from_u32(2), &mut ws);
        assert!(ctx.element_equals(&ws, &ctx.convert(&a.modmul(&a, &m))));
        ctx.square_in_place(&mut ws);
        let a2 = a.modmul(&a, &m);
        assert!(ctx.element_equals(&ws, &ctx.convert(&a2.modmul(&a2, &m))));
    }

    #[test]
    fn prepared_workspace_squarings_match_generic_multiplies() {
        let _guard = engine::mode_lock();
        // Odd moduli across limb counts, including k > 2 where the SOS
        // squaring path actually runs.
        for dec in [
            "1000003",
            "170141183460469231731687303715884105727", // 2^127 - 1 (k = 2)
            "340282366920938463463374607431768211507", // 2^128 + 51 (k = 3)
            "115792089237316195423570985008687907853269984665640564039457584007913129639747",
        ] {
            let m = BigUint::from_decimal_str(dec).unwrap();
            let ctx = MontgomeryCtx::new(&m).unwrap();
            let mut prepared = MontWorkspace::new();
            ctx.prepare(&mut prepared);
            let mut plain = ctx.workspace();
            let a = BigUint::from_decimal_str("987654321234567898765432123456789").unwrap();
            let e = BigUint::from_u32(65537);
            ctx.load(&a, &mut prepared);
            ctx.pow_in_place(&e, &mut prepared);
            ctx.load(&a, &mut plain);
            ctx.pow_in_place(&e, &mut plain);
            assert_eq!(prepared.value, plain.value, "modulus {dec}");
            // Long (windowed) exponents agree too.
            let d = BigUint::from_decimal_str("123456789012345678901234567890123456789").unwrap();
            ctx.load(&a, &mut prepared);
            ctx.pow_in_place(&d, &mut prepared);
            assert_eq!(ctx.modpow(&a, &d), ctx.recover_value(&prepared));
        }
    }

    #[test]
    fn prepare_refits_across_widths_and_stash_compares() {
        let small = MontgomeryCtx::new(&big(1_000_003)).unwrap();
        let large = MontgomeryCtx::new(&BigUint::one().shl(127).sub(&BigUint::one())).unwrap();
        let mut ws = MontWorkspace::new();

        small.prepare(&mut ws);
        small.load(&big(42), &mut ws);
        small.stash_value(&mut ws);
        small.load(&big(42), &mut ws);
        assert!(small.value_equals_stash(&ws));
        small.load(&big(43), &mut ws);
        assert!(!small.value_equals_stash(&ws));

        // Re-fitting to a wider modulus and back keeps results exact.
        large.prepare(&mut ws);
        let a = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
        large.load(&a, &mut ws);
        large.pow_in_place(&BigUint::from_u32(65537), &mut ws);
        assert_eq!(
            large.recover_value(&ws),
            large.modpow(&a, &BigUint::from_u32(65537))
        );
        small.prepare(&mut ws);
        small.load(&big(7), &mut ws);
        small.pow_in_place(&big(13), &mut ws);
        assert_eq!(small.recover_value(&ws), small.modpow(&big(7), &big(13)));
    }

    #[test]
    fn multi_limb_modulus_round_trips() {
        let m = BigUint::from_decimal_str("340282366920938463463374607431768211507").unwrap(); // 2^128 + 51, odd
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let a = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
        assert_eq!(ctx.recover(&ctx.convert(&a)), a);
        let sq = ctx.modpow(&a, &big(2));
        assert_eq!(sq, a.modmul(&a, &m));
    }
}
