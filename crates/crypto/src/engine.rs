//! Process-wide switch between the optimized crypto engine and the
//! retained seed-path reference implementations.
//!
//! Mirrors `bfl_ml::engine` from the batched-GEMM PR: the optimized
//! paths (word-level Knuth division, Montgomery/REDC modular
//! exponentiation, CRT signing) are the default, and the original
//! bit-by-bit / square-and-multiply / plain-exponent implementations are
//! retained behind this switch for two consumers: the equivalence test
//! suites (which compare both paths bit-for-bit on the same inputs) and
//! the throughput benchmark (which measures the speedup end-to-end by
//! flipping this switch around otherwise identical runs, in the same
//! process, on the same machine).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Serializes callers that toggle — or whose correctness depends on —
/// the process-wide mode. Rust runs tests in parallel threads of one
/// process, so an equivalence test that reads the mode must hold this
/// lock, or a concurrently toggling test silently reroutes it.
pub fn mode_lock() -> MutexGuard<'static, ()> {
    MODE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Routes [`crate::bigint::BigUint::div_rem`], modular exponentiation and
/// [`crate::rsa::RsaPrivateKey::apply`] through the retained seed-path
/// implementations when `true`.
pub fn set_reference_mode(enabled: bool) {
    REFERENCE_MODE.store(enabled, Ordering::SeqCst);
}

/// Whether the reference path is active.
pub fn reference_mode() -> bool {
    REFERENCE_MODE.load(Ordering::Relaxed)
}

/// Runs `f` with the reference path enabled, restoring the previous mode
/// afterwards (also on panic).
pub fn with_reference_mode<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_reference_mode(self.0);
        }
    }
    let _restore = Restore(reference_mode());
    set_reference_mode(true);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_toggles_and_restores() {
        let _guard = mode_lock();
        assert!(!reference_mode());
        let inside = with_reference_mode(reference_mode);
        assert!(inside);
        assert!(!reference_mode());
        set_reference_mode(true);
        assert!(reference_mode());
        set_reference_mode(false);
    }
}
