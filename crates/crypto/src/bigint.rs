//! Arbitrary-precision unsigned integer arithmetic.
//!
//! RSA key generation, signing and verification need multi-precision
//! arithmetic far beyond 128 bits. This module provides a compact
//! [`BigUint`] with exactly the operations the [`crate::rsa`] and
//! [`crate::prime`] modules need: comparison, addition, subtraction,
//! schoolbook multiplication, binary long division, shifts, modular
//! exponentiation, gcd, and modular inversion via the extended Euclidean
//! algorithm (implemented with a small sign-tracking wrapper).
//!
//! Limbs are `u32` stored little-endian; all intermediate products fit in
//! `u64`, which keeps the carry logic straightforward and portable.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// The internal representation is a little-endian vector of 32-bit limbs
/// with no trailing zero limbs; zero is the empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(value: u64) -> Self {
        let mut limbs = vec![(value & 0xffff_ffff) as u32, (value >> 32) as u32];
        let mut out = BigUint { limbs: Vec::new() };
        out.limbs.append(&mut limbs);
        out.normalize();
        out
    }

    /// Constructs from a `u32`.
    pub fn from_u32(value: u32) -> Self {
        Self::from_u64(value as u64)
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Constructs from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut acc: u32 = 0;
        let mut shift = 0;
        for &byte in bytes.iter().rev() {
            acc |= (byte as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serialises to big-endian bytes with no leading zero bytes
    /// (zero serialises to an empty vector).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut bytes = Vec::with_capacity(self.limbs.len() * 4);
        for limb in &self.limbs {
            bytes.extend_from_slice(&limb.to_le_bytes());
        }
        while bytes.last() == Some(&0) {
            bytes.pop();
        }
        bytes.reverse();
        bytes
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// The number of significant bits (0 for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let offset = i % 32;
        self.limbs.get(limb).is_some_and(|l| (l >> offset) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the representation as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 32;
        let offset = i % 32;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << offset;
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry: u64 = 0;
        for (i, &limb) in longer.iter().enumerate() {
            let a = limb as u64;
            let b = shorter.get(i).copied().unwrap_or(0) as u64;
            let sum = a + b + carry;
            out.push((sum & 0xffff_ffff) as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Subtraction, returning `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = other.limbs.get(i).copied().unwrap_or(0) as i64;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut result = BigUint { limbs: out };
        result.normalize();
        Some(result)
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint::sub underflow: subtrahend exceeds minuend")
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = out[idx] as u64 + (a as u64) * (b as u64) + carry;
                out[idx] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let cur = out[idx] as u64 + carry;
                out[idx] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Multiplication by a small scalar.
    pub fn mul_u32(&self, scalar: u32) -> BigUint {
        self.mul(&BigUint::from_u32(scalar))
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            let mut c = self.clone();
            c.normalize();
            return c;
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; self.limbs.len() + limb_shift + 1];
        for (i, &limb) in self.limbs.iter().enumerate() {
            let idx = i + limb_shift;
            if bit_shift == 0 {
                out[idx] |= limb;
            } else {
                out[idx] |= limb << bit_shift;
                out[idx + 1] |= (limb as u64 >> (32 - bit_shift)) as u32;
            }
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut limb = self.limbs[i] >> bit_shift;
            if bit_shift > 0 {
                if let Some(&next) = self.limbs.get(i + 1) {
                    limb |= ((next as u64) << (32 - bit_shift)) as u32;
                }
            }
            out.push(limb);
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Division with remainder. Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.is_one() {
            return (self.clone(), BigUint::zero());
        }

        let bits = self.bit_len();
        let mut quotient = BigUint {
            limbs: vec![0u32; self.limbs.len()],
        };
        let mut remainder = BigUint::zero();
        for i in (0..bits).rev() {
            remainder = remainder.shl(1);
            if self.bit(i) {
                if remainder.limbs.is_empty() {
                    remainder.limbs.push(1);
                } else {
                    remainder.limbs[0] |= 1;
                }
            }
            if remainder >= *divisor {
                remainder = remainder.sub(divisor);
                quotient.limbs[i / 32] |= 1 << (i % 32);
            }
        }
        quotient.normalize();
        remainder.normalize();
        (quotient, remainder)
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular multiplication `self * other mod modulus`.
    pub fn modmul(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation by square-and-multiply.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut base = self.rem(modulus);
        let mut result = BigUint::one();
        let bits = exponent.bit_len();
        for i in 0..bits {
            if exponent.bit(i) {
                result = result.modmul(&base, modulus);
            }
            if i + 1 < bits {
                base = base.modmul(&base, modulus);
            }
        }
        result
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: returns `x` with `self * x ≡ 1 (mod modulus)`,
    /// or `None` if `gcd(self, modulus) != 1`.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid tracking only the coefficient of `self`.
        let mut r_prev = modulus.clone();
        let mut r = self.rem(modulus);
        let mut t_prev = Signed::zero();
        let mut t = Signed::positive(BigUint::one());

        while !r.is_zero() {
            let (q, rem) = r_prev.div_rem(&r);
            let t_next = t_prev.sub(&t.mul_unsigned(&q));
            r_prev = r;
            r = rem;
            t_prev = t;
            t = t_next;
        }

        if !r_prev.is_one() {
            return None;
        }
        Some(t_prev.to_modular(modulus))
    }

    /// Decimal string representation (used by `Display`).
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let chunk_div = BigUint::from_u64(1_000_000_000);
        let mut chunks = Vec::new();
        let mut value = self.clone();
        while !value.is_zero() {
            let (q, r) = value.div_rem(&chunk_div);
            chunks.push(r.to_u64().unwrap_or(0));
            value = q;
        }
        let mut s = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        for chunk in chunks.into_iter().rev() {
            s.push_str(&format!("{chunk:09}"));
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_decimal_str(s: &str) -> Option<BigUint> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let ten = BigUint::from_u32(10);
        let mut acc = BigUint::zero();
        for b in s.bytes() {
            acc = acc.mul(&ten).add(&BigUint::from_u32((b - b'0') as u32));
        }
        Some(acc)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal_string())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal_string())
    }
}

/// Minimal signed big integer used only by the extended Euclidean algorithm.
#[derive(Clone, Debug)]
struct Signed {
    magnitude: BigUint,
    negative: bool,
}

impl Signed {
    fn zero() -> Self {
        Signed {
            magnitude: BigUint::zero(),
            negative: false,
        }
    }

    fn positive(magnitude: BigUint) -> Self {
        Signed {
            magnitude,
            negative: false,
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.negative, other.negative) {
            // a - b with both non-negative.
            (false, false) => {
                if self.magnitude >= other.magnitude {
                    Signed::positive(self.magnitude.sub(&other.magnitude))
                } else {
                    Signed {
                        magnitude: other.magnitude.sub(&self.magnitude),
                        negative: true,
                    }
                }
            }
            // a - (-b) = a + b.
            (false, true) => Signed::positive(self.magnitude.add(&other.magnitude)),
            // (-a) - b = -(a + b).
            (true, false) => Signed {
                magnitude: self.magnitude.add(&other.magnitude),
                negative: true,
            },
            // (-a) - (-b) = b - a.
            (true, true) => {
                if other.magnitude >= self.magnitude {
                    Signed::positive(other.magnitude.sub(&self.magnitude))
                } else {
                    Signed {
                        magnitude: self.magnitude.sub(&other.magnitude),
                        negative: true,
                    }
                }
            }
        }
    }

    fn mul_unsigned(&self, factor: &BigUint) -> Signed {
        Signed {
            magnitude: self.magnitude.mul(factor),
            negative: self.negative && !self.magnitude.is_zero() && !factor.is_zero(),
        }
    }

    /// Reduces into `[0, modulus)`.
    fn to_modular(&self, modulus: &BigUint) -> BigUint {
        let reduced = self.magnitude.rem(modulus);
        if self.negative && !reduced.is_zero() {
            modulus.sub(&reduced)
        } else {
            reduced
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn from_and_to_u64() {
        for v in [0u64, 1, 7, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            assert_eq!(big(v).to_u64(), Some(v));
        }
        let too_big = big(u64::MAX).add(&BigUint::one());
        assert_eq!(too_big.to_u64(), None);
    }

    #[test]
    fn byte_round_trip() {
        let v = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert!(BigUint::from_bytes_be(&[]).is_zero());
        assert!(BigUint::zero().to_bytes_be().is_empty());
        // Leading zero bytes are absorbed.
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 5]), big(5));
    }

    #[test]
    fn addition_and_subtraction() {
        assert_eq!(big(123).add(&big(456)), big(579));
        assert_eq!(
            big(u64::MAX).add(&BigUint::one()).to_decimal_string(),
            "18446744073709551616"
        );
        assert_eq!(big(579).sub(&big(456)), big(123));
        assert_eq!(big(5).checked_sub(&big(6)), None);
        assert_eq!(big(5).checked_sub(&big(5)), Some(BigUint::zero()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn multiplication() {
        assert_eq!(big(0).mul(&big(12345)), BigUint::zero());
        assert_eq!(big(12345).mul(&big(0)), BigUint::zero());
        assert_eq!(big(111111).mul(&big(111111)), big(12345654321));
        let a = BigUint::from_decimal_str("340282366920938463463374607431768211456").unwrap(); // 2^128
        assert_eq!(
            a.mul(&a).to_decimal_string(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639936"
        );
        assert_eq!(big(7).mul_u32(6), big(42));
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl(64).to_decimal_string(), "18446744073709551616");
        assert_eq!(big(0b1011).shl(3), big(0b1011000));
        assert_eq!(big(0b1011000).shr(3), big(0b1011));
        assert_eq!(big(12345).shr(200), BigUint::zero());
        assert_eq!(BigUint::zero().shl(17), BigUint::zero());
        assert_eq!(big(1).shl(33).shr(33), big(1));
    }

    #[test]
    fn division() {
        let (q, r) = big(1000).div_rem(&big(7));
        assert_eq!(q, big(142));
        assert_eq!(r, big(6));
        let (q, r) = big(5).div_rem(&big(1000));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, big(5));
        let (q, r) = big(1000).div_rem(&BigUint::one());
        assert_eq!(q, big(1000));
        assert_eq!(r, BigUint::zero());
        // Large case cross-checked against Python.
        let a = BigUint::from_decimal_str("123456789012345678901234567890123456789").unwrap();
        let b = BigUint::from_decimal_str("987654321098765432109").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_decimal_string(), "124999998860937500");
        assert_eq!(r.to_decimal_string(), "14172067901781269289");
        assert_eq!(b.mul(&q).add(&r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        assert_eq!(big(2).modpow(&big(10), &big(1025)), big(1024));
        assert_eq!(big(7).modpow(&BigUint::zero(), &big(13)), BigUint::one());
        assert_eq!(big(7).modpow(&big(5), &BigUint::one()), BigUint::zero());
        // Fermat's little theorem: a^(p-1) ≡ 1 mod p for prime p, a not divisible by p.
        let p = big(1_000_000_007);
        assert_eq!(big(123456).modpow(&big(1_000_000_006), &p), BigUint::one());
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(big(54).gcd(&big(24)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(big(0).gcd(&big(9)), big(9));

        let inv = big(3).modinv(&big(11)).unwrap();
        assert_eq!(inv, big(4));
        assert_eq!(big(3).mul(&inv).rem(&big(11)), BigUint::one());

        assert!(big(6).modinv(&big(9)).is_none());
        assert!(big(5).modinv(&BigUint::one()).is_none());

        // A known RSA-style inversion: 65537^{-1} mod a 64-bit phi.
        let phi = big(7775023486193254396);
        let e = big(65537);
        if let Some(d) = e.modinv(&phi) {
            assert_eq!(e.mul(&d).rem(&phi), BigUint::one());
        } else {
            panic!("65537 should be invertible modulo an odd phi not divisible by it");
        }
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
        ] {
            let v = BigUint::from_decimal_str(s).unwrap();
            assert_eq!(v.to_decimal_string(), s);
        }
        assert!(BigUint::from_decimal_str("").is_none());
        assert!(BigUint::from_decimal_str("12a3").is_none());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(2) < big(3));
        assert!(big(0x1_0000_0000) > big(0xffff_ffff));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
        assert!(big(5).partial_cmp(&big(6)).unwrap().is_lt());
    }

    #[test]
    fn bit_manipulation() {
        let mut v = BigUint::zero();
        v.set_bit(0);
        v.set_bit(40);
        assert!(v.bit(0));
        assert!(v.bit(40));
        assert!(!v.bit(1));
        assert_eq!(v, big(1).add(&big(1).shl(40)));
        assert_eq!(v.bit_len(), 41);
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{}", big(12345)), "12345");
        assert_eq!(format!("{:?}", big(12345)), "BigUint(12345)");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let sum = big(a).add(&big(b));
            prop_assert_eq!(sum.to_decimal_string(), (a as u128 + b as u128).to_string());
        }

        #[test]
        fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let product = big(a).mul(&big(b));
            prop_assert_eq!(product.to_decimal_string(), (a as u128 * b as u128).to_string());
        }

        #[test]
        fn sub_add_round_trip(a in any::<u64>(), b in any::<u64>()) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!(big(hi).sub(&big(lo)).add(&big(lo)), big(hi));
        }

        #[test]
        fn div_rem_reconstructs(a in any::<u64>(), b in 1u64..) {
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(q.clone().mul(&big(b)).add(&r.clone()), big(a));
            prop_assert!(r < big(b));
            prop_assert_eq!(q, big(a / b));
        }

        #[test]
        fn modpow_matches_u128(base in 0u64..1_000_000, exp in 0u64..64, modulus in 2u64..1_000_000) {
            let mut expected: u128 = 1;
            for _ in 0..exp {
                expected = expected * (base as u128 % modulus as u128) % modulus as u128;
            }
            prop_assert_eq!(
                big(base).modpow(&big(exp), &big(modulus)),
                BigUint::from_u64(expected as u64)
            );
        }

        #[test]
        fn shift_round_trip(a in any::<u64>(), s in 0usize..100) {
            prop_assert_eq!(big(a).shl(s).shr(s), big(a));
        }

        #[test]
        fn byte_round_trip_random(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let v = BigUint::from_bytes_be(&bytes);
            prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }

        #[test]
        fn modinv_is_inverse(a in 2u64..100_000, m in 3u64..100_000) {
            let a_big = big(a);
            let m_big = big(m);
            if a_big.gcd(&m_big).is_one() {
                let inv = a_big.modinv(&m_big).expect("coprime values are invertible");
                prop_assert_eq!(a_big.mul(&inv).rem(&m_big), BigUint::one());
                prop_assert!(inv < m_big);
            } else {
                prop_assert!(a_big.modinv(&m_big).is_none());
            }
        }

        #[test]
        fn gcd_divides_both(a in 1u64.., b in 1u64..) {
            let g = big(a).gcd(&big(b));
            prop_assert!(!g.is_zero());
            prop_assert!(big(a).rem(&g).is_zero());
            prop_assert!(big(b).rem(&g).is_zero());
        }

        #[test]
        fn decimal_round_trip_random(a in any::<u64>()) {
            let s = a.to_string();
            prop_assert_eq!(BigUint::from_decimal_str(&s).unwrap().to_decimal_string(), s);
        }
    }
}
