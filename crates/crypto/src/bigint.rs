//! Arbitrary-precision unsigned integer arithmetic.
//!
//! RSA key generation, signing and verification need multi-precision
//! arithmetic far beyond 128 bits. This module provides a compact
//! [`BigUint`] with exactly the operations the [`crate::rsa`] and
//! [`crate::prime`] modules need: comparison, addition, subtraction,
//! schoolbook multiplication, division, shifts, modular exponentiation,
//! gcd, and modular inversion via the extended Euclidean algorithm
//! (implemented with a small sign-tracking wrapper).
//!
//! # Representation
//!
//! Limbs are `u64` stored little-endian with **no trailing zero limbs**;
//! zero is the empty vector. Every constructor normalizes, so two equal
//! values always have identical limb vectors (`Eq`/`Hash` are
//! representation equality). All intermediate products and carries fit
//! in `u128`, which keeps the carry logic straightforward and portable
//! while halving the limb count and quartering the number of inner-loop
//! multiply-accumulate steps relative to the earlier 32-bit layout.
//!
//! The external representations are *value*-based and therefore
//! independent of the limb width: [`BigUint::to_bytes_be`] emits
//! minimal big-endian bytes, [`BigUint::to_hex_string`] minimal
//! lowercase hex (the serde wire format), and both round-trip
//! bit-for-bit with what the 32-bit layout produced.
//!
//! # Fast and reference paths
//!
//! Division and modular exponentiation each have two implementations.
//! The hot path uses word-level Knuth Algorithm D division (one 64-bit
//! quotient digit per step) and Montgomery/REDC exponentiation (see
//! [`crate::montgomery`]); the seed implementations — binary long
//! division and square-and-multiply over `div_rem`-based `modmul` — are
//! retained behind [`crate::engine::set_reference_mode`] and pinned to
//! the fast paths bit-for-bit by the equivalence test suite.

use crate::engine;
use crate::montgomery::MontgomeryCtx;
use serde::{Deserialize, Serialize, Value};
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// The internal representation is a little-endian vector of 64-bit limbs
/// with no trailing zero limbs; zero is the empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(value: u64) -> Self {
        let limbs = if value != 0 { vec![value] } else { Vec::new() };
        BigUint { limbs }
    }

    /// Constructs from a `u32`.
    pub fn from_u32(value: u32) -> Self {
        Self::from_u64(value as u64)
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Constructs from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0;
        for &byte in bytes.iter().rev() {
            acc |= (byte as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serialises to big-endian bytes with no leading zero bytes
    /// (zero serialises to an empty vector).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut bytes = Vec::with_capacity(self.limbs.len() * 8);
        for limb in &self.limbs {
            bytes.extend_from_slice(&limb.to_le_bytes());
        }
        while bytes.last() == Some(&0) {
            bytes.pop();
        }
        bytes.reverse();
        bytes
    }

    /// Little-endian limb view (no trailing zero limbs).
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Builds from little-endian limbs, normalizing trailing zeros.
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// The number of significant bits (0 for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let offset = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> offset) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the representation as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        let offset = i % 64;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << offset;
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place addition: `self += other`. Reuses `self`'s allocation
    /// whenever the sum fits its current capacity.
    pub fn add_assign(&mut self, other: &BigUint) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry: u128 = 0;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0) as u128;
            if carry == 0 && b == 0 && i >= other.limbs.len() {
                break;
            }
            let sum = *limb as u128 + b + carry;
            *limb = sum as u64;
            carry = sum >> 64;
        }
        if carry > 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Subtraction, returning `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = self.clone();
        out.sub_assign(other);
        Some(out)
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint::sub underflow: subtrahend exceeds minuend")
    }

    /// In-place subtraction: `self -= other`.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub_assign(&mut self, other: &BigUint) {
        assert!(
            *self >= *other,
            "BigUint::sub underflow: subtrahend exceeds minuend"
        );
        let mut borrow: u64 = 0;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            if borrow == 0 && b == 0 && i >= other.limbs.len() {
                break;
            }
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 | b2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        let mut out = BigUint::zero();
        self.mul_to(other, &mut out);
        out
    }

    /// Schoolbook multiplication into `out`, reusing `out`'s allocation.
    /// `out` must not alias `self` or `other` (enforced by `&mut`).
    pub fn mul_to(&self, other: &BigUint, out: &mut BigUint) {
        out.limbs.clear();
        if self.is_zero() || other.is_zero() {
            return;
        }
        out.limbs.resize(self.limbs.len() + other.limbs.len(), 0);
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = out.limbs[idx] as u128 + (a as u128) * (b as u128) + carry;
                out.limbs[idx] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let cur = out.limbs[idx] as u128 + carry;
                out.limbs[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        out.normalize();
    }

    /// Multiplication by a small scalar, at the limb level (single pass,
    /// no temporary `BigUint`).
    pub fn mul_u64(&self, scalar: u64) -> BigUint {
        if self.is_zero() || scalar == 0 {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &limb in &self.limbs {
            let cur = limb as u128 * scalar as u128 + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint { limbs: out }
    }

    /// Multiplication by a `u32` scalar (see [`Self::mul_u64`]).
    pub fn mul_u32(&self, scalar: u32) -> BigUint {
        self.mul_u64(scalar as u64)
    }

    /// Division by a small scalar, at the limb level: returns the quotient
    /// and the `u64` remainder in a single high-to-low pass.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero BigUint");
        let mut quotient = self.clone();
        let rem = quotient.div_assign_u64(divisor);
        (quotient, rem)
    }

    /// Division by a `u32` scalar (see [`Self::div_rem_u64`]).
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem_u32(&self, divisor: u32) -> (BigUint, u32) {
        let (q, r) = self.div_rem_u64(divisor as u64);
        (q, r as u32)
    }

    /// Remainder of division by a small scalar, in one high-to-low pass
    /// with no allocation (the quotient is never materialized). Used by
    /// the grouped small-prime trial division in [`crate::prime`].
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn rem_u64(&self, divisor: u64) -> u64 {
        assert!(divisor != 0, "division by zero BigUint");
        let mut rem: u128 = 0;
        for &limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | limb as u128) % divisor as u128;
        }
        rem as u64
    }

    /// In-place division by a small scalar, returning the remainder.
    fn div_assign_u64(&mut self, divisor: u64) -> u64 {
        debug_assert!(divisor != 0);
        let mut rem: u128 = 0;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | *limb as u128;
            *limb = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        self.normalize();
        rem as u64
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            // Limbs are always normalized, so the clone can be returned
            // directly without building a shifted buffer.
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &limb) in self.limbs.iter().enumerate() {
            let idx = i + limb_shift;
            if bit_shift == 0 {
                out[idx] |= limb;
            } else {
                out[idx] |= limb << bit_shift;
                out[idx + 1] |= limb >> (64 - bit_shift);
            }
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        if bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut limb = self.limbs[i] >> bit_shift;
            if bit_shift > 0 {
                if let Some(&next) = self.limbs.get(i + 1) {
                    limb |= next << (64 - bit_shift);
                }
            }
            out.push(limb);
        }
        let mut result = BigUint { limbs: out };
        result.normalize();
        result
    }

    /// Division with remainder. Panics if `divisor` is zero.
    ///
    /// Routes to word-level Knuth Algorithm D by default; the seed
    /// binary long division is retained behind
    /// [`crate::engine::set_reference_mode`] as [`Self::div_rem_reference`].
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        if engine::reference_mode() {
            return self.div_rem_reference(divisor);
        }
        self.div_rem_knuth(divisor)
    }

    /// Word-level division (Knuth TAOCP Vol. 2, Algorithm 4.3.1 D).
    ///
    /// Processes one 64-bit quotient limb per step against a normalized
    /// divisor, instead of one bit per step, and performs the
    /// multiply-subtract in place — no allocation inside the loop.
    pub fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }

        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;
        // D1: normalize so the divisor's top limb has its high bit set;
        // this bounds the quotient-digit estimate error by 2.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        debug_assert_eq!(v.len(), n);
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0);

        let vn1 = v[n - 1] as u128;
        let vn2 = v[n - 2] as u128;
        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // D3: estimate the quotient digit from the top two dividend
            // limbs; correct it (at most twice) using the third.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / vn1;
            let mut rhat = top % vn1;
            loop {
                // `qhat >= 2^64` short-circuits before the product, which
                // only fits u128 once qhat is a single limb.
                if qhat > u64::MAX as u128 || qhat * vn2 > (rhat << 64) | u[j + n - 2] as u128 {
                    qhat -= 1;
                    rhat += vn1;
                    if rhat <= u64::MAX as u128 {
                        continue;
                    }
                }
                break;
            }

            // D4: multiply and subtract qhat * v from u[j..j+n] in place.
            let mut carry: u128 = 0;
            let mut borrow: u64 = 0;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let (d1, b1) = u[j + i].overflowing_sub(p as u64);
                let (d2, b2) = d1.overflowing_sub(borrow);
                u[j + i] = d2;
                borrow = (b1 | b2) as u64;
            }
            let (d1, b1) = u[j + n].overflowing_sub(carry as u64);
            let (d2, b2) = d1.overflowing_sub(borrow);
            if b1 | b2 {
                // D6: the estimate was one too large — add the divisor back.
                u[j + n] = d2;
                qhat -= 1;
                let mut c: u128 = 0;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + c;
                    u[j + i] = s as u64;
                    c = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(c as u64);
            } else {
                u[j + n] = d2;
            }
            q[j] = qhat as u64;
        }

        u.truncate(n);
        let remainder = BigUint::from_limbs(u).shr(shift);
        (BigUint::from_limbs(q), remainder)
    }

    /// The seed binary long division, one quotient bit per step. Retained
    /// as the reference path for [`Self::div_rem_knuth`]'s equivalence
    /// tests and the throughput benchmark.
    pub fn div_rem_reference(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.is_one() {
            return (self.clone(), BigUint::zero());
        }

        let bits = self.bit_len();
        let mut quotient = BigUint {
            limbs: vec![0u64; self.limbs.len()],
        };
        let mut remainder = BigUint::zero();
        for i in (0..bits).rev() {
            remainder = remainder.shl(1);
            if self.bit(i) {
                if remainder.limbs.is_empty() {
                    remainder.limbs.push(1);
                } else {
                    remainder.limbs[0] |= 1;
                }
            }
            if remainder >= *divisor {
                remainder = remainder.sub(divisor);
                quotient.limbs[i / 64] |= 1 << (i % 64);
            }
        }
        quotient.normalize();
        remainder.normalize();
        (quotient, remainder)
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular multiplication `self * other mod modulus`.
    pub fn modmul(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation.
    ///
    /// Routes to Montgomery/REDC with fixed 4-bit windows for odd moduli
    /// (see [`crate::montgomery`]); even moduli and
    /// [`crate::engine::set_reference_mode`] fall back to binary
    /// square-and-multiply over `modmul`.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if !engine::reference_mode() {
            if let Some(ctx) = MontgomeryCtx::new(modulus) {
                return ctx.modpow(self, exponent);
            }
        }
        let mut base = self.rem(modulus);
        let mut result = BigUint::one();
        let bits = exponent.bit_len();
        for i in 0..bits {
            if exponent.bit(i) {
                result = result.modmul(&base, modulus);
            }
            if i + 1 < bits {
                base = base.modmul(&base, modulus);
            }
        }
        result
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: returns `x` with `self * x ≡ 1 (mod modulus)`,
    /// or `None` if `gcd(self, modulus) != 1`.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid tracking only the coefficient of `self`.
        let mut r_prev = modulus.clone();
        let mut r = self.rem(modulus);
        let mut t_prev = Signed::zero();
        let mut t = Signed::positive(BigUint::one());

        while !r.is_zero() {
            let (q, rem) = r_prev.div_rem(&r);
            let t_next = t_prev.sub(&t.mul_unsigned(&q));
            r_prev = r;
            r = rem;
            t_prev = t;
            t = t_next;
        }

        if !r_prev.is_one() {
            return None;
        }
        Some(t_prev.to_modular(modulus))
    }

    /// Decimal string representation (used by `Display`).
    ///
    /// Peels nineteen digits per in-place single-limb division — a
    /// linear pass per chunk instead of a full `div_rem` against a
    /// `BigUint` divisor (`10^19` is the largest power of ten below
    /// `2^64`).
    pub fn to_decimal_string(&self) -> String {
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks = Vec::with_capacity(self.limbs.len() + 1);
        let mut value = self.clone();
        while !value.is_zero() {
            chunks.push(value.div_assign_u64(CHUNK));
        }
        let mut s = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        for chunk in chunks.into_iter().rev() {
            s.push_str(&format!("{chunk:019}"));
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_decimal_str(s: &str) -> Option<BigUint> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = BigUint::zero();
        for b in s.bytes() {
            acc = acc.mul_u64(10);
            acc.add_assign(&BigUint::from_u32((b - b'0') as u32));
        }
        Some(acc)
    }

    /// Lowercase hexadecimal representation (no leading zeros, no prefix;
    /// zero renders as `"0"`). Used by the serde impl so serialized keys
    /// stay compact and byte-order unambiguous.
    pub fn to_hex_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        let mut limbs = self.limbs.iter().rev();
        if let Some(top) = limbs.next() {
            s.push_str(&format!("{top:x}"));
        }
        for limb in limbs {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }

    /// Parses a (case-insensitive) hexadecimal string without prefix.
    pub fn from_hex_str(s: &str) -> Option<BigUint> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut limbs = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut end = bytes.len();
        while end > 0 {
            let start = end.saturating_sub(16);
            let chunk = std::str::from_utf8(&bytes[start..end]).ok()?;
            limbs.push(u64::from_str_radix(chunk, 16).ok()?);
            end = start;
        }
        Some(BigUint::from_limbs(limbs))
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal_string())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal_string())
    }
}

impl Serialize for BigUint {
    fn to_value(&self) -> Value {
        Value::Str(self.to_hex_string())
    }
}

impl Deserialize for BigUint {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::Str(s) => BigUint::from_hex_str(s)
                .ok_or_else(|| serde::Error::custom(format!("invalid BigUint hex string `{s}`"))),
            other => Err(serde::Error::custom(format!(
                "expected hex string for BigUint, found {}",
                other.kind()
            ))),
        }
    }
}

/// Minimal signed big integer used only by the extended Euclidean algorithm.
#[derive(Clone, Debug)]
struct Signed {
    magnitude: BigUint,
    negative: bool,
}

impl Signed {
    fn zero() -> Self {
        Signed {
            magnitude: BigUint::zero(),
            negative: false,
        }
    }

    fn positive(magnitude: BigUint) -> Self {
        Signed {
            magnitude,
            negative: false,
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.negative, other.negative) {
            // a - b with both non-negative.
            (false, false) => {
                if self.magnitude >= other.magnitude {
                    Signed::positive(self.magnitude.sub(&other.magnitude))
                } else {
                    Signed {
                        magnitude: other.magnitude.sub(&self.magnitude),
                        negative: true,
                    }
                }
            }
            // a - (-b) = a + b.
            (false, true) => Signed::positive(self.magnitude.add(&other.magnitude)),
            // (-a) - b = -(a + b).
            (true, false) => Signed {
                magnitude: self.magnitude.add(&other.magnitude),
                negative: true,
            },
            // (-a) - (-b) = b - a.
            (true, true) => {
                if other.magnitude >= self.magnitude {
                    Signed::positive(other.magnitude.sub(&self.magnitude))
                } else {
                    Signed {
                        magnitude: self.magnitude.sub(&other.magnitude),
                        negative: true,
                    }
                }
            }
        }
    }

    fn mul_unsigned(&self, factor: &BigUint) -> Signed {
        Signed {
            magnitude: self.magnitude.mul(factor),
            negative: self.negative && !self.magnitude.is_zero() && !factor.is_zero(),
        }
    }

    /// Reduces into `[0, modulus)`.
    fn to_modular(&self, modulus: &BigUint) -> BigUint {
        let reduced = self.magnitude.rem(modulus);
        if self.negative && !reduced.is_zero() {
            modulus.sub(&reduced)
        } else {
            reduced
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn from_and_to_u64() {
        for v in [0u64, 1, 7, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            assert_eq!(big(v).to_u64(), Some(v));
        }
        let too_big = big(u64::MAX).add(&BigUint::one());
        assert_eq!(too_big.to_u64(), None);
    }

    #[test]
    fn from_u64_is_normalized() {
        assert!(big(0).limbs.is_empty());
        assert_eq!(big(7).limbs, vec![7]);
        assert_eq!(big(1 << 40).limbs.len(), 1);
        assert_eq!(big(u64::MAX).add(&BigUint::one()).limbs.len(), 2);
    }

    #[test]
    fn byte_round_trip() {
        let v = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert!(BigUint::from_bytes_be(&[]).is_zero());
        assert!(BigUint::zero().to_bytes_be().is_empty());
        // Leading zero bytes are absorbed.
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 5]), big(5));
    }

    #[test]
    fn addition_and_subtraction() {
        assert_eq!(big(123).add(&big(456)), big(579));
        assert_eq!(
            big(u64::MAX).add(&BigUint::one()).to_decimal_string(),
            "18446744073709551616"
        );
        assert_eq!(big(579).sub(&big(456)), big(123));
        assert_eq!(big(5).checked_sub(&big(6)), None);
        assert_eq!(big(5).checked_sub(&big(5)), Some(BigUint::zero()));
    }

    #[test]
    fn in_place_add_sub_match_functional() {
        let mut a = big(u64::MAX);
        a.add_assign(&big(u64::MAX));
        assert_eq!(a, big(u64::MAX).add(&big(u64::MAX)));
        a.sub_assign(&big(u64::MAX));
        assert_eq!(a, big(u64::MAX));
        a.sub_assign(&big(u64::MAX));
        assert!(a.is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_assign_underflow_panics() {
        let mut a = big(1);
        a.sub_assign(&big(2));
    }

    #[test]
    fn multiplication() {
        assert_eq!(big(0).mul(&big(12345)), BigUint::zero());
        assert_eq!(big(12345).mul(&big(0)), BigUint::zero());
        assert_eq!(big(111111).mul(&big(111111)), big(12345654321));
        let a = BigUint::from_decimal_str("340282366920938463463374607431768211456").unwrap(); // 2^128
        assert_eq!(
            a.mul(&a).to_decimal_string(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639936"
        );
        assert_eq!(big(7).mul_u32(6), big(42));
        assert_eq!(
            big(u64::MAX).mul_u64(u64::MAX),
            big(u64::MAX).mul(&big(u64::MAX))
        );
    }

    #[test]
    fn mul_to_reuses_output() {
        let mut out = BigUint::zero();
        big(111111).mul_to(&big(111111), &mut out);
        assert_eq!(out, big(12345654321));
        big(0).mul_to(&big(5), &mut out);
        assert!(out.is_zero());
        big(3).mul_to(&big(4), &mut out);
        assert_eq!(out, big(12));
    }

    #[test]
    fn mul_u64_and_div_rem_u64_are_inverse() {
        let v = BigUint::from_decimal_str("987654321098765432109876543210").unwrap();
        let scalar: u64 = 9_999_999_999_999_999_937;
        let scaled = v.mul_u64(scalar);
        let (q, r) = scaled.div_rem_u64(scalar);
        assert_eq!(q, v);
        assert_eq!(r, 0);
        let (q, r) = scaled.add(&big(17)).div_rem_u64(scalar);
        assert_eq!(q, v);
        assert_eq!(r, 17);
        assert_eq!(v.mul_u64(0), BigUint::zero());
        // The u32 wrappers agree with the u64 forms.
        let (q32, r32) = v.div_rem_u32(999_999_937);
        let (q64, r64) = v.div_rem_u64(999_999_937);
        assert_eq!(q32, q64);
        assert_eq!(r32 as u64, r64);
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl(64).to_decimal_string(), "18446744073709551616");
        assert_eq!(big(0b1011).shl(3), big(0b1011000));
        assert_eq!(big(0b1011000).shr(3), big(0b1011));
        assert_eq!(big(12345).shr(200), BigUint::zero());
        assert_eq!(BigUint::zero().shl(17), BigUint::zero());
        assert_eq!(big(1).shl(33).shr(33), big(1));
        assert_eq!(big(1).shl(65).shr(65), big(1));
        assert_eq!(big(12345).shl(0), big(12345));
        assert_eq!(big(12345).shr(0), big(12345));
        assert_eq!(big(12345).shl(128).shr(128), big(12345));
    }

    #[test]
    fn division() {
        let (q, r) = big(1000).div_rem(&big(7));
        assert_eq!(q, big(142));
        assert_eq!(r, big(6));
        let (q, r) = big(5).div_rem(&big(1000));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, big(5));
        let (q, r) = big(1000).div_rem(&BigUint::one());
        assert_eq!(q, big(1000));
        assert_eq!(r, BigUint::zero());
        // Large case cross-checked against Python.
        let a = BigUint::from_decimal_str("123456789012345678901234567890123456789").unwrap();
        let b = BigUint::from_decimal_str("987654321098765432109").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_decimal_string(), "124999998860937500");
        assert_eq!(r.to_decimal_string(), "14172067901781269289");
        assert_eq!(b.mul(&q).add(&r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big(5).div_rem(&BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn reference_division_by_zero_panics() {
        let _ = big(5).div_rem_reference(&BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_u64_panics() {
        let _ = big(5).div_rem_u64(0);
    }

    #[test]
    fn knuth_division_add_back_case() {
        // Crafted so the quotient-digit estimate overshoots and Algorithm
        // D's add-back step (D6) runs: dividend chosen with maximal top
        // limbs against a divisor just below a power of two.
        let a = BigUint::from_limbs(vec![0, u64::MAX - 1, u64::MAX]);
        let b = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = a.div_rem_knuth(&b);
        assert_eq!(b.mul(&q).add(&r), a);
        assert!(r < b);
        let (q_ref, r_ref) = a.div_rem_reference(&b);
        assert_eq!(q, q_ref);
        assert_eq!(r, r_ref);
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        assert_eq!(big(2).modpow(&big(10), &big(1025)), big(1024));
        assert_eq!(big(7).modpow(&BigUint::zero(), &big(13)), BigUint::one());
        assert_eq!(big(7).modpow(&big(5), &BigUint::one()), BigUint::zero());
        // Fermat's little theorem: a^(p-1) ≡ 1 mod p for prime p, a not divisible by p.
        let p = big(1_000_000_007);
        assert_eq!(big(123456).modpow(&big(1_000_000_006), &p), BigUint::one());
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(big(54).gcd(&big(24)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(big(0).gcd(&big(9)), big(9));

        let inv = big(3).modinv(&big(11)).unwrap();
        assert_eq!(inv, big(4));
        assert_eq!(big(3).mul(&inv).rem(&big(11)), BigUint::one());

        assert!(big(6).modinv(&big(9)).is_none());
        assert!(big(5).modinv(&BigUint::one()).is_none());

        // A known RSA-style inversion: 65537^{-1} mod a 64-bit phi.
        let phi = big(7775023486193254396);
        let e = big(65537);
        if let Some(d) = e.modinv(&phi) {
            assert_eq!(e.mul(&d).rem(&phi), BigUint::one());
        } else {
            panic!("65537 should be invertible modulo an odd phi not divisible by it");
        }
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "9999999999999999999",
            "10000000000000000000",
            "123456789012345678901234567890",
        ] {
            let v = BigUint::from_decimal_str(s).unwrap();
            assert_eq!(v.to_decimal_string(), s);
        }
        assert!(BigUint::from_decimal_str("").is_none());
        assert!(BigUint::from_decimal_str("12a3").is_none());
    }

    #[test]
    fn hex_round_trip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = BigUint::from_hex_str(s).unwrap();
            assert_eq!(v.to_hex_string(), s);
        }
        assert_eq!(BigUint::from_hex_str("FF"), Some(big(255)));
        assert!(BigUint::from_hex_str("").is_none());
        assert!(BigUint::from_hex_str("12g3").is_none());
        // Leading zeros parse but do not round-trip verbatim.
        assert_eq!(BigUint::from_hex_str("000ff"), Some(big(255)));
    }

    #[test]
    fn serde_round_trip() {
        let v = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
        let json = serde_json::to_string(&v).unwrap();
        let back: BigUint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        let zero_json = serde_json::to_string(&BigUint::zero()).unwrap();
        let zero: BigUint = serde_json::from_str(&zero_json).unwrap();
        assert!(zero.is_zero());
        assert!(serde_json::from_str::<BigUint>("42").is_err());
        assert!(serde_json::from_str::<BigUint>("\"12g3\"").is_err());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(2) < big(3));
        assert!(big(0x1_0000_0000) > big(0xffff_ffff));
        assert!(big(u64::MAX).add(&BigUint::one()) > big(u64::MAX));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
        assert!(big(5).partial_cmp(&big(6)).unwrap().is_lt());
    }

    #[test]
    fn bit_manipulation() {
        let mut v = BigUint::zero();
        v.set_bit(0);
        v.set_bit(40);
        v.set_bit(70);
        assert!(v.bit(0));
        assert!(v.bit(40));
        assert!(v.bit(70));
        assert!(!v.bit(1));
        assert_eq!(v, big(1).add(&big(1).shl(40)).add(&big(1).shl(70)));
        assert_eq!(v.bit_len(), 71);
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{}", big(12345)), "12345");
        assert_eq!(format!("{:?}", big(12345)), "BigUint(12345)");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let sum = big(a).add(&big(b));
            prop_assert_eq!(sum.to_decimal_string(), (a as u128 + b as u128).to_string());
        }

        #[test]
        fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let product = big(a).mul(&big(b));
            prop_assert_eq!(product.to_decimal_string(), (a as u128 * b as u128).to_string());
        }

        #[test]
        fn mul_u64_matches_mul(a in any::<u64>(), s in any::<u64>()) {
            prop_assert_eq!(big(a).mul_u64(s), big(a).mul(&BigUint::from_u64(s)));
        }

        #[test]
        fn div_rem_u64_matches_div_rem(a in any::<u64>(), d in 1u64..) {
            let (q, r) = big(a).div_rem_u64(d);
            let (q_big, r_big) = big(a).div_rem(&BigUint::from_u64(d));
            prop_assert_eq!(q, q_big);
            prop_assert_eq!(BigUint::from_u64(r), r_big);
            prop_assert_eq!(big(a).rem_u64(d), r);
        }

        #[test]
        fn rem_u64_matches_div_rem_wide(
            bytes in proptest::collection::vec(any::<u8>(), 0..48),
            d in 1u64..,
        ) {
            let v = BigUint::from_bytes_be(&bytes);
            prop_assert_eq!(BigUint::from_u64(v.rem_u64(d)), v.rem(&big(d)));
        }

        #[test]
        fn sub_add_round_trip(a in any::<u64>(), b in any::<u64>()) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!(big(hi).sub(&big(lo)).add(&big(lo)), big(hi));
        }

        #[test]
        fn div_rem_reconstructs(a in any::<u64>(), b in 1u64..) {
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(q.clone().mul(&big(b)).add(&r.clone()), big(a));
            prop_assert!(r < big(b));
            prop_assert_eq!(q, big(a / b));
        }

        #[test]
        fn modpow_matches_u128(base in 0u64..1_000_000, exp in 0u64..64, modulus in 2u64..1_000_000) {
            let mut expected: u128 = 1;
            for _ in 0..exp {
                expected = expected * (base as u128 % modulus as u128) % modulus as u128;
            }
            prop_assert_eq!(
                big(base).modpow(&big(exp), &big(modulus)),
                BigUint::from_u64(expected as u64)
            );
        }

        #[test]
        fn shift_round_trip(a in any::<u64>(), s in 0usize..200) {
            prop_assert_eq!(big(a).shl(s).shr(s), big(a));
        }

        #[test]
        fn byte_round_trip_random(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let v = BigUint::from_bytes_be(&bytes);
            prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }

        #[test]
        fn modinv_is_inverse(a in 2u64..100_000, m in 3u64..100_000) {
            let a_big = big(a);
            let m_big = big(m);
            if a_big.gcd(&m_big).is_one() {
                let inv = a_big.modinv(&m_big).expect("coprime values are invertible");
                prop_assert_eq!(a_big.mul(&inv).rem(&m_big), BigUint::one());
                prop_assert!(inv < m_big);
            } else {
                prop_assert!(a_big.modinv(&m_big).is_none());
            }
        }

        #[test]
        fn gcd_divides_both(a in 1u64.., b in 1u64..) {
            let g = big(a).gcd(&big(b));
            prop_assert!(!g.is_zero());
            prop_assert!(big(a).rem(&g).is_zero());
            prop_assert!(big(b).rem(&g).is_zero());
        }

        #[test]
        fn decimal_round_trip_random(a in any::<u64>()) {
            let s = a.to_string();
            prop_assert_eq!(BigUint::from_decimal_str(&s).unwrap().to_decimal_string(), s);
        }

        #[test]
        fn hex_round_trip_random(a in any::<u64>()) {
            let s = format!("{a:x}");
            prop_assert_eq!(BigUint::from_hex_str(&s).unwrap().to_hex_string(), s);
        }

        #[test]
        fn in_place_ops_match_functional(a in any::<u64>(), b in any::<u64>()) {
            let mut sum = big(a);
            sum.add_assign(&big(b));
            prop_assert_eq!(&sum, &big(a).add(&big(b)));
            let mut diff = sum.clone();
            diff.sub_assign(&big(b));
            prop_assert_eq!(diff, big(a));
            let mut product = BigUint::zero();
            big(a).mul_to(&big(b), &mut product);
            prop_assert_eq!(product, big(a).mul(&big(b)));
        }
    }
}
