//! Miner-side registry of client public keys.
//!
//! In FAIR-BFL "each client is assigned a unique private key according to
//! its ID, and the corresponding public key will be held by the miners"
//! (Section 4.2). The [`KeyStore`] is that holding structure: it maps client
//! identifiers to public keys and offers a single verification entry point
//! so the chain and core crates never handle raw key material directly.

use crate::error::CryptoError;
use crate::rsa::{RsaKeyPair, RsaPublicKey};
use crate::signature::{verify_message, SignedMessage};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Registry mapping client ids to their RSA public keys.
///
/// Serializable so a miner's registry can be persisted and restored
/// alongside the chain state. Each held [`RsaPublicKey`] carries its
/// lazily-built Montgomery context (see [`crate::rsa::MontCache`]), so
/// the per-modulus precomputation is paid once per registered key, not
/// once per verified upload; the caches never enter the serialized form.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeyStore {
    keys: BTreeMap<u64, RsaPublicKey>,
}

impl KeyStore {
    /// Creates an empty key store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the public key for `client_id`.
    pub fn register(&mut self, client_id: u64, key: RsaPublicKey) {
        self.keys.insert(client_id, key);
    }

    /// Removes a client's key, returning it if present.
    pub fn revoke(&mut self, client_id: u64) -> Option<RsaPublicKey> {
        self.keys.remove(&client_id)
    }

    /// Looks up the public key registered for `client_id`.
    pub fn public_key(&self, client_id: u64) -> Option<&RsaPublicKey> {
        self.keys.get(&client_id)
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over registered `(client_id, public_key)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &RsaPublicKey)> {
        self.keys.iter()
    }

    /// Verifies a signed message against the key registered for its signer.
    pub fn verify(&self, message: &SignedMessage) -> Result<(), CryptoError> {
        let key = self
            .keys
            .get(&message.signer)
            .ok_or(CryptoError::UnknownSigner(message.signer))?;
        verify_message(message, key)
    }

    /// Convenience setup: generates key pairs for `client_ids`, registers the
    /// public halves, and returns the private pairs keyed by client id.
    pub fn provision<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client_ids: &[u64],
        modulus_bits: usize,
    ) -> Result<BTreeMap<u64, RsaKeyPair>, CryptoError> {
        let mut pairs = BTreeMap::new();
        for &id in client_ids {
            let pair = RsaKeyPair::generate(rng, modulus_bits)?;
            self.register(id, pair.public.clone());
            pairs.insert(id, pair);
        }
        Ok(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::sign_message;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn provision_registers_all_clients() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = store.provision(&mut rng, &[0, 1, 2, 3], 192).unwrap();
        assert_eq!(store.len(), 4);
        assert_eq!(pairs.len(), 4);
        assert!(!store.is_empty());
        for id in 0..4u64 {
            assert!(store.public_key(id).is_some());
        }
        assert!(store.public_key(99).is_none());
    }

    #[test]
    fn verify_accepts_registered_signers_and_rejects_unknown() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = store.provision(&mut rng, &[10, 20], 256).unwrap();

        let msg = sign_message(10, b"local gradient", &pairs[&10].private);
        store.verify(&msg).expect("registered signer verifies");

        let unknown = sign_message(30, b"ghost", &pairs[&10].private);
        assert_eq!(store.verify(&unknown), Err(CryptoError::UnknownSigner(30)));
    }

    #[test]
    fn verify_rejects_cross_client_forgery() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = store.provision(&mut rng, &[1, 2], 256).unwrap();
        // Client 2 signs but claims to be client 1.
        let forged = sign_message(1, b"poisoned gradient", &pairs[&2].private);
        assert_eq!(store.verify(&forged), Err(CryptoError::InvalidSignature));
    }

    #[test]
    fn revoke_removes_keys() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let pairs = store.provision(&mut rng, &[7], 192).unwrap();
        assert!(store.revoke(7).is_some());
        assert!(store.revoke(7).is_none());
        let msg = sign_message(7, b"late upload", &pairs[&7].private);
        assert_eq!(store.verify(&msg), Err(CryptoError::UnknownSigner(7)));
    }

    #[test]
    fn serde_round_trip_preserves_verification() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let pairs = store.provision(&mut rng, &[2, 4], 192).unwrap();
        let json = serde_json::to_string(&store).unwrap();
        let restored: KeyStore = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.len(), 2);
        let msg = sign_message(4, b"gradient", &pairs[&4].private);
        restored.verify(&msg).expect("restored store verifies");
    }

    #[test]
    fn iter_is_ordered_by_client_id() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        store.provision(&mut rng, &[5, 1, 3], 192).unwrap();
        let ids: Vec<u64> = store.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}
