//! Miner-side registry of client public keys.
//!
//! In FAIR-BFL "each client is assigned a unique private key according to
//! its ID, and the corresponding public key will be held by the miners"
//! (Section 4.2). The [`KeyStore`] is that holding structure: it maps client
//! identifiers to public keys and offers a single verification entry point
//! so the chain and core crates never handle raw key material directly.

use crate::error::CryptoError;
use crate::rsa::{RsaKeyPair, RsaPublicKey};
use crate::signature::{verify_message, BatchVerifier, SignedMessage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Registry mapping client ids to their RSA public keys.
///
/// Serializable so a miner's registry can be persisted and restored
/// alongside the chain state. Each held [`RsaPublicKey`] carries its
/// lazily-built Montgomery context (see [`crate::rsa::MontCache`]), so
/// the per-modulus precomputation is paid once per registered key, not
/// once per verified upload; the caches never enter the serialized form.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KeyStore {
    keys: BTreeMap<u64, RsaPublicKey>,
}

impl KeyStore {
    /// Creates an empty key store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the public key for `client_id`.
    pub fn register(&mut self, client_id: u64, key: RsaPublicKey) {
        self.keys.insert(client_id, key);
    }

    /// Removes a client's key, returning it if present.
    pub fn revoke(&mut self, client_id: u64) -> Option<RsaPublicKey> {
        self.keys.remove(&client_id)
    }

    /// Looks up the public key registered for `client_id`.
    pub fn public_key(&self, client_id: u64) -> Option<&RsaPublicKey> {
        self.keys.get(&client_id)
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over registered `(client_id, public_key)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &RsaPublicKey)> {
        self.keys.iter()
    }

    /// Verifies a signed message against the key registered for its signer.
    pub fn verify(&self, message: &SignedMessage) -> Result<(), CryptoError> {
        let key = self
            .keys
            .get(&message.signer)
            .ok_or(CryptoError::UnknownSigner(message.signer))?;
        verify_message(message, key)
    }

    /// Verifies a signed message through a shared [`BatchVerifier`], so a
    /// caller draining many uploads amortises one Montgomery workspace
    /// across all of them. Decision-identical to [`KeyStore::verify`].
    pub fn verify_cached(
        &self,
        message: &SignedMessage,
        verifier: &mut BatchVerifier,
    ) -> Result<(), CryptoError> {
        let key = self
            .keys
            .get(&message.signer)
            .ok_or(CryptoError::UnknownSigner(message.signer))?;
        verifier.confirm(message, key)
    }

    /// Verifies a slice of signed messages as a batch, returning one
    /// verdict per message in input order. Unknown signers are reported
    /// per slot; the known-signer remainder goes through
    /// [`BatchVerifier::verify_batch`], whose screen-then-confirm path
    /// keeps every per-message decision identical to [`KeyStore::verify`].
    pub fn verify_batch(
        &self,
        messages: &[&SignedMessage],
        verifier: &mut BatchVerifier,
    ) -> Vec<Result<(), CryptoError>> {
        let mut results: Vec<Option<Result<(), CryptoError>>> =
            messages.iter().map(|_| None).collect();
        let mut known = Vec::with_capacity(messages.len());
        let mut known_slots = Vec::with_capacity(messages.len());
        for (slot, message) in messages.iter().enumerate() {
            match self.keys.get(&message.signer) {
                Some(key) => {
                    known.push((*message, key));
                    known_slots.push(slot);
                }
                None => results[slot] = Some(Err(CryptoError::UnknownSigner(message.signer))),
            }
        }
        for (slot, verdict) in known_slots.into_iter().zip(verifier.verify_batch(&known)) {
            results[slot] = Some(verdict);
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot receives a verdict"))
            .collect()
    }

    /// Convenience setup: generates key pairs for `client_ids`, registers the
    /// public halves, and returns the private pairs keyed by client id.
    pub fn provision<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client_ids: &[u64],
        modulus_bits: usize,
    ) -> Result<BTreeMap<u64, RsaKeyPair>, CryptoError> {
        let mut pairs = BTreeMap::new();
        for &id in client_ids {
            let pair = RsaKeyPair::generate(rng, modulus_bits)?;
            self.register(id, pair.public.clone());
            pairs.insert(id, pair);
        }
        Ok(pairs)
    }
}

/// Lazy, deterministic key provisioning for implicit populations.
///
/// ## The lazy `KeyStore` contract
///
/// Eager provisioning ([`KeyStore::provision`]) draws every client's key
/// material *sequentially* from one RNG, so client `i`'s key depends on
/// all keys generated before it — fine for small populations, O(population)
/// keygen work for large ones. The vault instead gives every client its
/// **own** key stream:
///
/// ```text
/// stream(id) = StdRng::seed_from_u64(key_seed ^ (id · 0x9E37_79B9_7F4A_7C15))
/// ```
///
/// where `key_seed` is the run's key-stream seed (the engine passes
/// `fl.seed ^ 0x5EED_0F4B`, the same constant the eager path uses) and the
/// golden-ratio multiply is the per-entity mixer shared with round seeds
/// and per-client training RNGs. Every RSA draw for client `id` — prime
/// candidates, Miller–Rabin witnesses — comes from `stream(id)` and nothing
/// else, which yields the two guarantees lazy provisioning rests on:
///
/// 1. **Rederivation is identity.** Evicting a pair and deriving it again
///    replays the same stream from the same seed, so the regenerated pair
///    is byte-identical; the cache is a pure memoization and its budget or
///    eviction order can never change results.
/// 2. **Stream isolation.** No draw touches the learning or fault streams,
///    so lazy and eager runs see identical learning-stream states. (Key
///    *material* still differs from the eager path — sequential vs
///    per-index streams — but key bytes never enter round outcomes, block
///    hashes, or rewards; they only gate signature verification, which
///    passes in both.)
///
/// The cache keeps at most `budget` private pairs, evicting the least
/// recently *used* pair (touch = signing lookup or `ensure`). Evicted
/// public keys leave the embedded [`KeyStore`] too, keeping the registry
/// O(active); a later re-selection simply re-registers the identical key.
#[derive(Debug, Clone)]
pub struct LazyKeyVault {
    key_seed: u64,
    modulus_bits: usize,
    budget: usize,
    store: KeyStore,
    pairs: BTreeMap<u64, RsaKeyPair>,
    /// LRU bookkeeping: monotone touch tick per cached id, plus the
    /// inverse (tick → id) so eviction is O(log n).
    last_touch: BTreeMap<u64, u64>,
    by_tick: BTreeMap<u64, u64>,
    next_tick: u64,
}

impl LazyKeyVault {
    /// Creates a vault deriving `modulus_bits` keys from `key_seed`,
    /// caching at most `budget` pairs (at least one).
    pub fn new(key_seed: u64, modulus_bits: usize, budget: usize) -> Self {
        LazyKeyVault {
            key_seed,
            modulus_bits,
            budget: budget.max(1),
            store: KeyStore::new(),
            pairs: BTreeMap::new(),
            last_touch: BTreeMap::new(),
            by_tick: BTreeMap::new(),
            next_tick: 0,
        }
    }

    /// The registry of currently-cached public keys (what a miner holds).
    pub fn store(&self) -> &KeyStore {
        &self.store
    }

    /// Currently-cached private pairs, keyed by client id.
    pub fn pairs(&self) -> &BTreeMap<u64, RsaKeyPair> {
        &self.pairs
    }

    /// Number of cached pairs.
    pub fn cached(&self) -> usize {
        self.pairs.len()
    }

    /// Derives client `id`'s key pair from its per-index stream. Pure in
    /// `(key_seed, id, modulus_bits)` — see the type-level contract.
    pub fn derive(key_seed: u64, id: u64, modulus_bits: usize) -> Result<RsaKeyPair, CryptoError> {
        let mut rng = StdRng::seed_from_u64(key_seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        RsaKeyPair::generate(&mut rng, modulus_bits)
    }

    fn touch(&mut self, id: u64) {
        if let Some(old) = self.last_touch.insert(id, self.next_tick) {
            self.by_tick.remove(&old);
        }
        self.by_tick.insert(self.next_tick, id);
        self.next_tick += 1;
    }

    fn evict_to_budget(&mut self) {
        while self.pairs.len() > self.budget {
            let Some((&tick, &victim)) = self.by_tick.iter().next() else {
                break;
            };
            self.by_tick.remove(&tick);
            self.last_touch.remove(&victim);
            self.pairs.remove(&victim);
            self.store.revoke(victim);
        }
    }

    /// Ensures client `id`'s pair is cached (deriving it on a miss) and
    /// returns a reference to it, marking it most recently used.
    pub fn pair(&mut self, id: u64) -> Result<&RsaKeyPair, CryptoError> {
        if !self.pairs.contains_key(&id) {
            let pair = Self::derive(self.key_seed, id, self.modulus_bits)?;
            self.store.register(id, pair.public.clone());
            self.pairs.insert(id, pair);
        }
        self.touch(id);
        self.evict_to_budget();
        Ok(self.pairs.get(&id).expect("just ensured"))
    }

    /// Ensures every id in `ids` is cached. With `budget >= ids.len()` the
    /// whole set survives until the next provisioning wave.
    pub fn ensure(&mut self, ids: &[u64]) -> Result<(), CryptoError> {
        for &id in ids {
            self.pair(id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::sign_message;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn provision_registers_all_clients() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = store.provision(&mut rng, &[0, 1, 2, 3], 192).unwrap();
        assert_eq!(store.len(), 4);
        assert_eq!(pairs.len(), 4);
        assert!(!store.is_empty());
        for id in 0..4u64 {
            assert!(store.public_key(id).is_some());
        }
        assert!(store.public_key(99).is_none());
    }

    #[test]
    fn verify_accepts_registered_signers_and_rejects_unknown() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = store.provision(&mut rng, &[10, 20], 256).unwrap();

        let msg = sign_message(10, b"local gradient", &pairs[&10].private);
        store.verify(&msg).expect("registered signer verifies");

        let unknown = sign_message(30, b"ghost", &pairs[&10].private);
        assert_eq!(store.verify(&unknown), Err(CryptoError::UnknownSigner(30)));
    }

    #[test]
    fn verify_rejects_cross_client_forgery() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = store.provision(&mut rng, &[1, 2], 256).unwrap();
        // Client 2 signs but claims to be client 1.
        let forged = sign_message(1, b"poisoned gradient", &pairs[&2].private);
        assert_eq!(store.verify(&forged), Err(CryptoError::InvalidSignature));
    }

    #[test]
    fn revoke_removes_keys() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let pairs = store.provision(&mut rng, &[7], 192).unwrap();
        assert!(store.revoke(7).is_some());
        assert!(store.revoke(7).is_none());
        let msg = sign_message(7, b"late upload", &pairs[&7].private);
        assert_eq!(store.verify(&msg), Err(CryptoError::UnknownSigner(7)));
    }

    #[test]
    fn serde_round_trip_preserves_verification() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let pairs = store.provision(&mut rng, &[2, 4], 192).unwrap();
        let json = serde_json::to_string(&store).unwrap();
        let restored: KeyStore = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.len(), 2);
        let msg = sign_message(4, b"gradient", &pairs[&4].private);
        restored.verify(&msg).expect("restored store verifies");
    }

    #[test]
    fn verify_batch_mixes_unknown_signers_with_batch_verdicts() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(8);
        let pairs = store.provision(&mut rng, &[1, 2], 256).unwrap();
        let good = sign_message(1, b"gradient", &pairs[&1].private);
        let ghost = sign_message(9, b"ghost", &pairs[&1].private);
        let mut forged = sign_message(2, b"gradient", &pairs[&2].private);
        forged.payload = b"poisoned".to_vec();
        let batch = [&good, &ghost, &forged];
        let mut verifier = BatchVerifier::new();
        let verdicts = store.verify_batch(&batch, &mut verifier);
        let singles: Vec<_> = batch.iter().map(|m| store.verify(m)).collect();
        assert_eq!(verdicts, singles);
        assert_eq!(verdicts[0], Ok(()));
        assert_eq!(verdicts[1], Err(CryptoError::UnknownSigner(9)));
        assert_eq!(verdicts[2], Err(CryptoError::InvalidSignature));
    }

    #[test]
    fn verify_cached_matches_verify() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let pairs = store.provision(&mut rng, &[3], 256).unwrap();
        let good = sign_message(3, b"upload", &pairs[&3].private);
        let mut bad = good.clone();
        bad.payload.push(0xFF);
        let unknown = sign_message(4, b"upload", &pairs[&3].private);
        let mut verifier = BatchVerifier::new();
        for msg in [&good, &bad, &unknown] {
            assert_eq!(store.verify_cached(msg, &mut verifier), store.verify(msg));
        }
    }

    #[test]
    fn lazy_vault_rederives_identical_pairs_after_eviction() {
        let mut vault = LazyKeyVault::new(0xBF1 ^ 0x5EED_0F4B, 192, 2);
        let sig = {
            let pair = vault.pair(7).unwrap();
            sign_message(7, b"gradient", &pair.private)
        };
        // Push id 7 out of the budget-2 cache.
        vault.pair(8).unwrap();
        vault.pair(9).unwrap();
        assert_eq!(vault.cached(), 2);
        assert!(vault.pairs().get(&7).is_none(), "7 was evicted");
        assert!(vault.store().public_key(7).is_none(), "revoked with it");
        // Rederivation is identity: the old signature verifies against the
        // regenerated public key.
        vault.pair(7).unwrap();
        vault.store().verify(&sig).expect("rederived key matches");
    }

    #[test]
    fn lazy_vault_evicts_least_recently_used() {
        let mut vault = LazyKeyVault::new(11, 192, 2);
        vault.pair(1).unwrap();
        vault.pair(2).unwrap();
        vault.pair(1).unwrap(); // touch 1 → 2 is now LRU
        vault.pair(3).unwrap();
        assert!(vault.pairs().contains_key(&1));
        assert!(!vault.pairs().contains_key(&2));
        assert!(vault.pairs().contains_key(&3));
        assert_eq!(vault.store().len(), 2);
    }

    #[test]
    fn lazy_vault_streams_are_independent_of_derivation_order() {
        let mut forward = LazyKeyVault::new(5, 192, 8);
        let mut backward = LazyKeyVault::new(5, 192, 8);
        forward.ensure(&[1, 2, 3]).unwrap();
        backward.ensure(&[3, 2, 1]).unwrap();
        for id in 1..=3u64 {
            let a = sign_message(id, b"m", &forward.pairs()[&id].private);
            backward.store().verify(&a).expect("order-independent keys");
        }
    }

    #[test]
    fn iter_is_ordered_by_client_id() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        store.provision(&mut rng, &[5, 1, 3], 192).unwrap();
        let ids: Vec<u64> = store.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}
