//! # bfl-crypto
//!
//! Cryptographic substrate for the FAIR-BFL reproduction.
//!
//! The FAIR-BFL protocol (Section 4.2 of the paper) signs every gradient
//! upload with the client's RSA private key so that miners can verify the
//! sender's identity and detect tampering before a local gradient enters
//! the round's gradient set. The blockchain substrate additionally needs a
//! cryptographic hash for block linkage, Merkle roots and proof-of-work.
//!
//! This crate implements those primitives from scratch, with no external
//! cryptography dependencies:
//!
//! * [`mod@sha256`] — the FIPS 180-4 SHA-256 compression function with both
//!   one-shot and incremental interfaces; `Clone` on the incremental
//!   hasher exposes midstates, which the PoW loop exploits to hash one
//!   padded block per nonce. On x86-64 with the SHA extensions the
//!   compression dispatches to the hardware instruction sequence.
//! * [`bigint`] — arbitrary-precision unsigned integers ([`BigUint`])
//!   over 64-bit limbs with `u128` intermediates: schoolbook
//!   multiplication, word-level Knuth Algorithm D division (seed binary
//!   long division retained as the reference path), modular
//!   exponentiation, and a minimal signed wrapper used by the extended
//!   Euclidean algorithm.
//! * [`montgomery`] — REDC-based modular multiplication (64-bit CIOS)
//!   and fixed-window exponentiation behind every hot `modpow`, with a
//!   reusable workspace for allocation-free exponentiation chains.
//! * [`prime`] — Miller-Rabin probabilistic primality testing (Montgomery
//!   accelerated, grouped small-prime trial division) and random prime
//!   generation.
//! * [`rsa`] — RSA key generation, raw modular sign/verify; private keys
//!   carry CRT factors so signing runs two half-size exponentiations,
//!   and both key types cache their per-modulus Montgomery contexts
//!   across operations.
//! * [`signature`] — the hash-then-sign envelope used by the protocol.
//! * [`keystore`] — the miner-side registry mapping client identifiers to
//!   public keys.
//! * [`engine`] — the process-wide switch that reroutes division,
//!   exponentiation and signing through the retained seed
//!   implementations for equivalence tests and benchmarks.
//!
//! The implementation favours determinism and measured speed; it is a
//! faithful protocol substrate for a simulation, **not** a hardened
//! production cryptography library (no constant-time guarantees, no
//! padding standards such as PSS/OAEP).

#![warn(missing_docs)]

pub mod bigint;
pub mod engine;
pub mod error;
pub mod keystore;
pub mod montgomery;
pub mod prime;
pub mod rsa;
pub mod sha256;
pub mod signature;

pub use bigint::BigUint;
pub use error::CryptoError;
pub use keystore::{KeyStore, LazyKeyVault};
pub use montgomery::{MontWorkspace, MontgomeryCtx};
pub use rsa::{CrtFactors, RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use sha256::{sha256, Sha256};
pub use signature::{sign_message, verify_message, BatchVerifier, Signature, SignedMessage};
