//! Error types shared by the cryptographic substrate.

use std::fmt;

/// Errors produced by key generation, signing and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A modular inverse does not exist (the operands are not coprime).
    NotInvertible,
    /// Prime generation exhausted its retry budget.
    PrimeGenerationFailed,
    /// The requested key size is too small to be usable.
    KeyTooSmall {
        /// Requested modulus size in bits.
        requested_bits: usize,
        /// Minimum supported modulus size in bits.
        minimum_bits: usize,
    },
    /// A signature failed verification.
    InvalidSignature,
    /// The signer referenced by a message is not present in the key store.
    UnknownSigner(u64),
    /// Raw byte material could not be decoded into the expected structure.
    Malformed(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::NotInvertible => write!(f, "modular inverse does not exist"),
            CryptoError::PrimeGenerationFailed => {
                write!(f, "failed to generate a prime within the retry budget")
            }
            CryptoError::KeyTooSmall {
                requested_bits,
                minimum_bits,
            } => write!(
                f,
                "requested RSA modulus of {requested_bits} bits is below the supported minimum of {minimum_bits} bits"
            ),
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::UnknownSigner(id) => write!(f, "no public key registered for signer {id}"),
            CryptoError::Malformed(msg) => write!(f, "malformed cryptographic material: {msg}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CryptoError::KeyTooSmall {
            requested_bits: 64,
            minimum_bits: 128,
        };
        let s = e.to_string();
        assert!(s.contains("64"));
        assert!(s.contains("128"));

        assert!(CryptoError::UnknownSigner(42).to_string().contains("42"));
        assert!(!CryptoError::NotInvertible.to_string().is_empty());
        assert!(!CryptoError::PrimeGenerationFailed.to_string().is_empty());
        assert!(!CryptoError::InvalidSignature.to_string().is_empty());
        assert!(CryptoError::Malformed("oops".into())
            .to_string()
            .contains("oops"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CryptoError::NotInvertible, CryptoError::NotInvertible);
        assert_ne!(CryptoError::NotInvertible, CryptoError::InvalidSignature);
    }
}
