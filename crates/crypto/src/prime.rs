//! Probabilistic primality testing and random prime generation.
//!
//! RSA key generation ([`crate::rsa`]) requires two random primes of half
//! the modulus size. This module provides Miller-Rabin testing with a
//! configurable number of witness rounds, plus helpers to draw uniformly
//! random [`BigUint`] values of a given bit length or below a bound.

use crate::bigint::BigUint;
use crate::engine;
use crate::error::CryptoError;
use crate::montgomery::MontgomeryCtx;
use rand::Rng;
use std::sync::OnceLock;

/// Number of Miller-Rabin rounds used by default for *arbitrary*
/// candidates (worst-case bound 4^-24). Randomly *generated* candidates
/// get away with far fewer rounds — see [`miller_rabin_rounds`].
pub const DEFAULT_MILLER_RABIN_ROUNDS: usize = 24;

/// Maximum number of candidates examined before prime generation gives up.
const MAX_PRIME_ATTEMPTS: usize = 100_000;

/// Small primes used for cheap trial division before Miller-Rabin.
const SMALL_PRIMES: [u32; 30] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113,
];

/// [`SMALL_PRIMES`] packed greedily into `u64` products, so trial
/// division costs one allocation-free [`BigUint::rem_u64`] pass per
/// group (three groups) instead of one full division per prime: the
/// residue modulo each member prime is recovered from the group residue
/// with word arithmetic.
fn small_prime_groups() -> &'static [(u64, &'static [u32])] {
    static GROUPS: OnceLock<Vec<(u64, &'static [u32])>> = OnceLock::new();
    GROUPS.get_or_init(|| {
        let mut groups: Vec<(u64, &'static [u32])> = Vec::new();
        let mut product: u64 = 1;
        let mut start = 0usize;
        for (i, &p) in SMALL_PRIMES.iter().enumerate() {
            match product.checked_mul(p as u64) {
                Some(next) => product = next,
                None => {
                    groups.push((product, &SMALL_PRIMES[start..i]));
                    product = p as u64;
                    start = i;
                }
            }
        }
        groups.push((product, &SMALL_PRIMES[start..]));
        groups
    })
}

/// Miller-Rabin rounds sufficient for candidates drawn *uniformly at
/// random*, as in [`generate_prime`].
///
/// The worst-case 4^-t bound is pessimistic for random inputs: the
/// Damgård-Landrock-Pomerance average-case analysis (the basis of FIPS
/// 186-5's reduced round counts) bounds the error for random `k`-bit
/// odd candidates by `k^(3/2) 2^t t^(-1/2) 4^(2-sqrt(tk))`, which for
/// every row below is under 2^-40 — far beyond anything a simulation
/// can observe. Adversarially *chosen* candidates must keep using
/// [`DEFAULT_MILLER_RABIN_ROUNDS`].
pub fn miller_rabin_rounds(bits: usize) -> usize {
    match bits {
        _ if bits >= 1024 => 4,
        _ if bits >= 512 => 5,
        _ if bits >= 256 => 6,
        _ if bits >= 128 => 8,
        _ => DEFAULT_MILLER_RABIN_ROUNDS,
    }
}

/// Draws a uniformly random value with exactly `bits` significant bits
/// (the top bit is forced to one).
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits > 0, "cannot draw a zero-bit random number");
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill(&mut buf[..]);
    // Clear excess high bits, then force the top bit so the bit length is exact.
    let excess = bytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    buf[0] |= 1u8 << (7 - excess);
    BigUint::from_bytes_be(&buf)
}

/// Draws a uniformly random value in `[0, bound)` by rejection sampling.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bit_len();
    let bytes = bits.div_ceil(8);
    let excess = bytes * 8 - bits;
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf[..]);
        buf[0] &= 0xffu8 >> excess;
        let candidate = BigUint::from_bytes_be(&buf);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// Draws a uniformly random value in `[low, high)`.
pub fn random_range<R: Rng + ?Sized>(rng: &mut R, low: &BigUint, high: &BigUint) -> BigUint {
    assert!(low < high, "empty random range");
    let span = high.sub(low);
    low.add(&random_below(rng, &span))
}

/// Miller-Rabin primality test with `rounds` random witnesses.
///
/// Returns `true` if `candidate` is probably prime. Deterministically
/// correct for candidates below 114 (covered by trial division).
pub fn is_probably_prime<R: Rng + ?Sized>(candidate: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if candidate.is_zero() || candidate.is_one() {
        return false;
    }
    // Trial division by small primes, one remainder pass per group.
    for &(product, primes) in small_prime_groups() {
        let group_rem = candidate.rem_u64(product);
        for &p in primes {
            if group_rem.is_multiple_of(p as u64) {
                // Divisible by p: prime exactly when the candidate *is* p.
                return *candidate == BigUint::from_u32(p);
            }
        }
    }

    // Write candidate - 1 = d * 2^s with d odd.
    let one = BigUint::one();
    let two = BigUint::from_u32(2);
    let n_minus_one = candidate.sub(&one);
    let mut d = n_minus_one.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    // One Montgomery context serves every witness of this candidate; the
    // witness chain then squares entirely inside the Montgomery domain
    // (the domain map is a bijection, so comparing in-domain values is
    // comparing residues). Trial division already removed even
    // candidates, so the context only fails in reference mode.
    let ctx = if engine::reference_mode() {
        None
    } else {
        MontgomeryCtx::new(candidate)
    };
    if let Some(ctx) = ctx {
        let one_m = ctx.one();
        let minus_one_m = ctx.convert(&n_minus_one);
        // One workspace serves every witness: the whole chain (domain
        // conversion, windowed pow, squarings) runs allocation-free.
        let mut ws = ctx.workspace();
        'mont_witness: for _ in 0..rounds {
            let a = random_range(rng, &two, &n_minus_one);
            ctx.load(&a, &mut ws);
            ctx.pow_in_place(&d, &mut ws);
            if ctx.element_equals(&ws, &one_m) || ctx.element_equals(&ws, &minus_one_m) {
                continue 'mont_witness;
            }
            for _ in 0..s.saturating_sub(1) {
                ctx.square_in_place(&mut ws);
                if ctx.element_equals(&ws, &minus_one_m) {
                    continue 'mont_witness;
                }
            }
            return false;
        }
        return true;
    }

    'witness: for _ in 0..rounds {
        let a = random_range(rng, &two, &n_minus_one);
        let mut x = a.modpow(&d, candidate);
        if x.is_one() || x == n_minus_one {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.modmul(&x, candidate);
            if x == n_minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits and its top
/// two bits set.
///
/// Forcing the second-highest bit keeps every candidate at or above
/// `1.5 * 2^(bits-1)`, so the product of two such primes always reaches
/// the full `2 * bits` (standard RSA practice: without it a requested
/// 256-bit modulus could come out at 255 bits).
pub fn generate_prime<R: Rng + ?Sized>(
    rng: &mut R,
    bits: usize,
    rounds: usize,
) -> Result<BigUint, CryptoError> {
    assert!(bits >= 8, "prime generation needs at least 8 bits");
    for _ in 0..MAX_PRIME_ATTEMPTS {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(bits - 2);
        // Force odd (setting bit 0 on an even value is the +1 the seed
        // path applied, without the temporary).
        candidate.set_bit(0);
        if candidate.bit_len() != bits {
            continue;
        }
        if is_probably_prime(&candidate, rounds, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBF1_2022)
    }

    #[test]
    fn prime_groups_cover_all_small_primes_without_overflow() {
        let groups = small_prime_groups();
        assert!(groups.len() >= 2);
        let flattened: Vec<u32> = groups
            .iter()
            .flat_map(|(_, primes)| primes.iter().copied())
            .collect();
        assert_eq!(flattened, SMALL_PRIMES);
        for &(product, primes) in groups {
            let expected: u128 = primes.iter().map(|&p| p as u128).product();
            assert_eq!(product as u128, expected, "group product must not wrap");
        }
    }

    #[test]
    fn adaptive_rounds_shrink_with_size_but_never_vanish() {
        assert_eq!(miller_rabin_rounds(2048), 4);
        assert_eq!(miller_rabin_rounds(512), 5);
        assert_eq!(miller_rabin_rounds(128), 8);
        assert_eq!(miller_rabin_rounds(64), DEFAULT_MILLER_RABIN_ROUNDS);
        for bits in [64usize, 128, 256, 512, 1024, 4096] {
            assert!(miller_rabin_rounds(bits) >= 4);
        }
    }

    #[test]
    fn small_primes_are_prime() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 101, 103, 997, 7919, 104729] {
            assert!(
                is_probably_prime(&BigUint::from_u64(p), DEFAULT_MILLER_RABIN_ROUNDS, &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_are_rejected() {
        let mut r = rng();
        for c in [
            0u64, 1, 4, 6, 9, 15, 21, 25, 100, 561, 1105, 1729, 2465, 6601, 8911, 104730,
        ] {
            assert!(
                !is_probably_prime(&BigUint::from_u64(c), DEFAULT_MILLER_RABIN_ROUNDS, &mut r),
                "{c} should be composite (or not prime)"
            );
        }
    }

    #[test]
    fn carmichael_numbers_are_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller-Rabin.
        let mut r = rng();
        for c in [561u64, 41041, 825265, 321197185] {
            assert!(!is_probably_prime(
                &BigUint::from_u64(c),
                DEFAULT_MILLER_RABIN_ROUNDS,
                &mut r
            ));
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        let mut r = rng();
        // 2^61 - 1 is a Mersenne prime.
        let p = BigUint::from_u64((1u64 << 61) - 1);
        assert!(is_probably_prime(&p, DEFAULT_MILLER_RABIN_ROUNDS, &mut r));
        // 2^67 - 1 is famously composite (193707721 * 761838257287).
        let c = BigUint::one().shl(67).sub(&BigUint::one());
        assert!(!is_probably_prime(&c, DEFAULT_MILLER_RABIN_ROUNDS, &mut r));
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut r = rng();
        for bits in [8usize, 17, 32, 63, 64, 65, 128, 257] {
            for _ in 0..5 {
                let v = random_bits(&mut r, bits);
                assert_eq!(v.bit_len(), bits);
            }
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = rng();
        let bound = BigUint::from_u64(1_000_003);
        for _ in 0..200 {
            assert!(random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut r = rng();
        let low = BigUint::from_u64(500);
        let high = BigUint::from_u64(1000);
        for _ in 0..200 {
            let v = random_range(&mut r, &low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    fn generated_primes_have_requested_size_and_are_odd() {
        let mut r = rng();
        for bits in [32usize, 48, 64, 96, 128] {
            let p = generate_prime(&mut r, bits, 16).expect("prime generation should succeed");
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            assert!(is_probably_prime(&p, DEFAULT_MILLER_RABIN_ROUNDS, &mut r));
        }
    }

    #[test]
    fn generated_primes_have_top_two_bits_set() {
        let mut r = rng();
        for bits in [32usize, 64, 128] {
            for _ in 0..3 {
                let p = generate_prime(&mut r, bits, 16).unwrap();
                assert!(
                    p.bit(bits - 1),
                    "{bits}-bit prime must set bit {}",
                    bits - 1
                );
                assert!(
                    p.bit(bits - 2),
                    "{bits}-bit prime must set bit {}",
                    bits - 2
                );
            }
        }
    }

    #[test]
    fn reference_and_montgomery_paths_agree_on_primality() {
        use crate::engine;
        let _guard = engine::mode_lock();
        for v in [
            104729u64,
            (1u64 << 61) - 1,
            825265,
            6601,
            999999999989,
            999999999990,
        ] {
            let candidate = BigUint::from_u64(v);
            let fast = {
                let mut r = StdRng::seed_from_u64(42);
                is_probably_prime(&candidate, 16, &mut r)
            };
            let reference = engine::with_reference_mode(|| {
                let mut r = StdRng::seed_from_u64(42);
                is_probably_prime(&candidate, 16, &mut r)
            });
            assert_eq!(fast, reference, "paths disagree on {v}");
        }
    }

    #[test]
    fn generated_primes_differ_across_draws() {
        let mut r = rng();
        let a = generate_prime(&mut r, 64, 16).unwrap();
        let b = generate_prime(&mut r, 64, 16).unwrap();
        assert_ne!(a, b);
    }
}
