//! Round-synchronized consensus.
//!
//! Under FAIR-BFL's Assumptions 1 and 2 every communication round produces
//! exactly one block: all miners hold the same gradient set, the winner of
//! the mining competition packs the (identical) global gradient and reward
//! list, broadcasts, and everyone else stops and appends. There is no fork
//! to resolve because there is nothing for a second winner to add. The
//! [`RoundConsensus`] type drives that flow over a set of per-miner chain
//! replicas and checks the invariant that all replicas stay identical.

use crate::block::Block;
use crate::chain::Blockchain;
use crate::error::ChainError;
use crate::miner::{sample_competition, Miner, MiningOutcome};
use crate::pow::PowConfig;
use crate::transaction::Transaction;
use rand::Rng;

/// The result of sealing one communication round.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusOutcome {
    /// Outcome of the mining competition (winner and timing).
    pub mining: MiningOutcome,
    /// The block every replica appended.
    pub block: Block,
    /// Height the replicas agree on after the round.
    pub height: u64,
}

/// Synchronized-round consensus over a set of miner chain replicas.
#[derive(Debug, Clone)]
pub struct RoundConsensus {
    /// One chain replica per miner, indexed in lock-step with `miners`.
    pub replicas: Vec<Blockchain>,
    /// The participating miners.
    pub miners: Vec<Miner>,
    /// Proof-of-work configuration shared by all miners.
    pub pow: PowConfig,
}

impl RoundConsensus {
    /// Creates a consensus group of `miners`, each starting from genesis.
    pub fn new(miners: Vec<Miner>, pow: PowConfig) -> Self {
        assert!(!miners.is_empty(), "consensus needs at least one miner");
        let replicas = miners.iter().map(|_| Blockchain::new()).collect();
        RoundConsensus {
            replicas,
            miners,
            pow,
        }
    }

    /// Number of participating miners.
    pub fn miner_count(&self) -> usize {
        self.miners.len()
    }

    /// The common chain height, if all replicas agree; `None` otherwise.
    pub fn agreed_height(&self) -> Option<u64> {
        let first = self.replicas.first()?.height();
        self.replicas
            .iter()
            .all(|c| c.height() == first && c.tip().hash() == self.replicas[0].tip().hash())
            .then_some(first)
    }

    /// Seals one communication round: samples the mining competition, has
    /// the winner build and mine the block carrying `transactions`, then
    /// broadcasts it to every replica.
    ///
    /// `timestamp_ms` is the simulated time at which the block is produced.
    pub fn seal_round<R: Rng + ?Sized>(
        &mut self,
        transactions: Vec<Transaction>,
        timestamp_ms: u64,
        rng: &mut R,
    ) -> Result<ConsensusOutcome, ChainError> {
        let mining = sample_competition(&self.miners, &self.pow, rng);

        // The winner assembles and actually mines the block (bounded search
        // with a generous budget; difficulty in simulations is modest).
        let winner = self
            .miners
            .iter()
            .find(|m| m.id == mining.winner)
            .expect("winner is one of the miners");
        let tip = self.replicas[0].tip().clone();
        let mut candidate = Block::candidate(
            &tip,
            transactions,
            timestamp_ms,
            self.pow.difficulty,
            winner.id,
        );
        // The search budget is proportional to the difficulty so the round
        // always terminates; 64x the expectation makes failure probability
        // negligible (e^-64).
        let budget = (self.pow.difficulty.saturating_mul(64)).max(1024);
        winner
            .mine_block(&mut candidate, &self.pow, budget)
            .ok_or(ChainError::InsufficientWork)?;

        // Broadcast: every replica validates and appends the same block.
        for replica in &mut self.replicas {
            replica.append(candidate.clone())?;
        }

        let height = self.agreed_height().expect("replicas remain in agreement");
        Ok(ConsensusOutcome {
            mining,
            block: candidate,
            height,
        })
    }

    /// Returns a reference to the (agreed) canonical chain.
    pub fn canonical_chain(&self) -> &Blockchain {
        &self.replicas[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group(m: usize) -> RoundConsensus {
        let miners = (0..m as u64).map(|id| Miner::new(id, 1000.0)).collect();
        RoundConsensus::new(miners, PowConfig::new(16))
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_miner_set_is_rejected() {
        let _ = RoundConsensus::new(vec![], PowConfig::default());
    }

    #[test]
    fn replicas_start_in_agreement() {
        let consensus = group(3);
        assert_eq!(consensus.miner_count(), 3);
        assert_eq!(consensus.agreed_height(), Some(0));
    }

    #[test]
    fn sealing_rounds_keeps_replicas_identical() {
        let mut consensus = group(4);
        let mut rng = StdRng::seed_from_u64(5);
        for round in 1..=5u64 {
            let txs = vec![Transaction::global_gradient(0, round, vec![round as u8])];
            let outcome = consensus.seal_round(txs, round * 1000, &mut rng).unwrap();
            assert_eq!(outcome.height, round);
            assert_eq!(consensus.agreed_height(), Some(round));
            assert!(consensus
                .miners
                .iter()
                .any(|m| m.id == outcome.mining.winner));
        }
        // Every replica holds the same 6 blocks (genesis + 5 rounds).
        for replica in &consensus.replicas {
            assert_eq!(replica.len(), 6);
            replica.validate_all().unwrap();
        }
    }

    #[test]
    fn one_block_per_round_no_empty_blocks() {
        let mut consensus = group(2);
        let mut rng = StdRng::seed_from_u64(6);
        for round in 1..=3u64 {
            let txs = vec![Transaction::global_gradient(0, round, vec![1, 2, 3])];
            consensus.seal_round(txs, 0, &mut rng).unwrap();
        }
        assert_eq!(consensus.canonical_chain().empty_block_count(), 0);
        assert_eq!(consensus.canonical_chain().height(), 3);
    }

    #[test]
    fn global_gradient_is_readable_from_latest_block() {
        let mut consensus = group(2);
        let mut rng = StdRng::seed_from_u64(7);
        consensus
            .seal_round(
                vec![Transaction::global_gradient(0, 1, vec![42])],
                0,
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            consensus.canonical_chain().latest_global_gradient(),
            Some((1, vec![42]))
        );
    }
}
