//! Round-synchronized consensus.
//!
//! Under FAIR-BFL's Assumptions 1 and 2 every communication round produces
//! exactly one block: all miners hold the same gradient set, the winner of
//! the mining competition packs the (identical) global gradient and reward
//! list, broadcasts, and everyone else stops and appends. There is no fork
//! to resolve because there is nothing for a second winner to add. The
//! [`RoundConsensus`] type drives that flow over a set of per-miner chain
//! replicas and checks the invariant that all replicas stay identical.

use crate::block::Block;
use crate::chain::Blockchain;
use crate::error::ChainError;
use crate::miner::{sample_competition, Miner, MiningOutcome};
use crate::pow::PowConfig;
use crate::transaction::Transaction;
use rand::Rng;

/// The result of sealing one communication round.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusOutcome {
    /// Outcome of the mining competition (winner and timing).
    pub mining: MiningOutcome,
    /// The block every replica appended.
    pub block: Block,
    /// Height the replicas agree on after the round.
    pub height: u64,
}

/// Synchronized-round consensus over a set of miner chain replicas.
#[derive(Debug, Clone)]
pub struct RoundConsensus {
    /// One chain replica per miner, indexed in lock-step with `miners`.
    pub replicas: Vec<Blockchain>,
    /// The participating miners.
    pub miners: Vec<Miner>,
    /// Proof-of-work configuration shared by all miners.
    pub pow: PowConfig,
}

impl RoundConsensus {
    /// Creates a consensus group of `miners`, each starting from genesis.
    pub fn new(miners: Vec<Miner>, pow: PowConfig) -> Self {
        assert!(!miners.is_empty(), "consensus needs at least one miner");
        let replicas = miners.iter().map(|_| Blockchain::new()).collect();
        RoundConsensus {
            replicas,
            miners,
            pow,
        }
    }

    /// Number of participating miners.
    pub fn miner_count(&self) -> usize {
        self.miners.len()
    }

    /// The common chain height, if all replicas agree; `None` otherwise.
    pub fn agreed_height(&self) -> Option<u64> {
        let first = self.replicas.first()?.height();
        self.replicas
            .iter()
            .all(|c| c.height() == first && c.tip().hash() == self.replicas[0].tip().hash())
            .then_some(first)
    }

    /// Seals one communication round: samples the mining competition, has
    /// the winner build and mine the block carrying `transactions`, then
    /// broadcasts it to every replica.
    ///
    /// `timestamp_ms` is the simulated time at which the block is produced.
    pub fn seal_round<R: Rng + ?Sized>(
        &mut self,
        transactions: Vec<Transaction>,
        timestamp_ms: u64,
        rng: &mut R,
    ) -> Result<ConsensusOutcome, ChainError> {
        let members: Vec<usize> = (0..self.miners.len()).collect();
        let outcome = self.seal_round_among(&members, transactions, timestamp_ms, rng)?;
        self.agreed_height().expect("replicas remain in agreement");
        Ok(outcome)
    }

    /// Seals one round among a *subset* of the miners — a mesh component
    /// during a partition, or the survivors of a miner crash. The
    /// competition runs over the member miners only, the block extends the
    /// first member's replica, and only member replicas append it; the
    /// rest of the mesh is unreachable and keeps its own tip.
    ///
    /// With every miner a member this is exactly [`seal_round`], drawing
    /// identically from `rng`.
    ///
    /// [`seal_round`]: RoundConsensus::seal_round
    pub fn seal_round_among<R: Rng + ?Sized>(
        &mut self,
        members: &[usize],
        transactions: Vec<Transaction>,
        timestamp_ms: u64,
        rng: &mut R,
    ) -> Result<ConsensusOutcome, ChainError> {
        assert!(!members.is_empty(), "a component needs at least one miner");
        let member_miners: Vec<Miner> = members.iter().map(|&i| self.miners[i].clone()).collect();
        let mining = sample_competition(&member_miners, &self.pow, rng);

        // The winner assembles and actually mines the block (bounded search
        // with a generous budget; difficulty in simulations is modest).
        let winner = member_miners
            .iter()
            .find(|m| m.id == mining.winner)
            .expect("winner is one of the members");
        let tip = self.replicas[members[0]].tip().clone();
        let mut candidate = Block::candidate(
            &tip,
            transactions,
            timestamp_ms,
            self.pow.difficulty,
            winner.id,
        );
        // The search budget is proportional to the difficulty so the round
        // always terminates; 64x the expectation makes failure probability
        // negligible (e^-64).
        let budget = (self.pow.difficulty.saturating_mul(64)).max(1024);
        winner
            .mine_block(&mut candidate, &self.pow, budget)
            .ok_or(ChainError::InsufficientWork)?;

        // Broadcast within the component: every member replica validates
        // and appends the same block.
        for &i in members {
            self.replicas[i].append(candidate.clone())?;
        }

        let height = self.replicas[members[0]].height();
        Ok(ConsensusOutcome {
            mining,
            block: candidate,
            height,
        })
    }

    /// Heals a fork after a partition or crash left the replicas on
    /// divergent tips: the longest replica wins (ties broken toward the
    /// lowest miner index, deterministically), every other replica adopts
    /// it, and the blocks of the losing branches are returned (deduped by
    /// hash, in replica order) so the round engine can salvage or discard
    /// their contents per the configured reorg policy.
    ///
    /// A no-op returning an empty list when the replicas already agree.
    pub fn heal(&mut self) -> Vec<Block> {
        if self.agreed_height().is_some() {
            return Vec::new();
        }
        let winner_index = (0..self.replicas.len())
            .max_by_key(|&i| (self.replicas[i].height(), std::cmp::Reverse(i)))
            .expect("consensus holds at least one replica");
        let winner = self.replicas[winner_index].clone();

        let mut orphans: Vec<Block> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for replica in &mut self.replicas {
            for orphan in replica.orphaned_against(&winner) {
                if seen.insert(orphan.hash()) {
                    orphans.push(orphan);
                }
            }
            if !replica.resolve_longest(&winner) {
                replica.resolve_preferred(&winner);
            }
        }
        debug_assert!(self.agreed_height().is_some(), "healed replicas agree");
        orphans
    }

    /// Returns a reference to the (agreed) canonical chain.
    pub fn canonical_chain(&self) -> &Blockchain {
        &self.replicas[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group(m: usize) -> RoundConsensus {
        let miners = (0..m as u64).map(|id| Miner::new(id, 1000.0)).collect();
        RoundConsensus::new(miners, PowConfig::new(16))
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_miner_set_is_rejected() {
        let _ = RoundConsensus::new(vec![], PowConfig::default());
    }

    #[test]
    fn replicas_start_in_agreement() {
        let consensus = group(3);
        assert_eq!(consensus.miner_count(), 3);
        assert_eq!(consensus.agreed_height(), Some(0));
    }

    #[test]
    fn sealing_rounds_keeps_replicas_identical() {
        let mut consensus = group(4);
        let mut rng = StdRng::seed_from_u64(5);
        for round in 1..=5u64 {
            let txs = vec![Transaction::global_gradient(0, round, vec![round as u8])];
            let outcome = consensus.seal_round(txs, round * 1000, &mut rng).unwrap();
            assert_eq!(outcome.height, round);
            assert_eq!(consensus.agreed_height(), Some(round));
            assert!(consensus
                .miners
                .iter()
                .any(|m| m.id == outcome.mining.winner));
        }
        // Every replica holds the same 6 blocks (genesis + 5 rounds).
        for replica in &consensus.replicas {
            assert_eq!(replica.len(), 6);
            replica.validate_all().unwrap();
        }
    }

    #[test]
    fn one_block_per_round_no_empty_blocks() {
        let mut consensus = group(2);
        let mut rng = StdRng::seed_from_u64(6);
        for round in 1..=3u64 {
            let txs = vec![Transaction::global_gradient(0, round, vec![1, 2, 3])];
            consensus.seal_round(txs, 0, &mut rng).unwrap();
        }
        assert_eq!(consensus.canonical_chain().empty_block_count(), 0);
        assert_eq!(consensus.canonical_chain().height(), 3);
    }

    #[test]
    fn full_membership_seal_matches_seal_round() {
        let mut via_seal = group(3);
        let mut via_among = group(3);
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let txs = vec![Transaction::global_gradient(0, 1, vec![9])];
        let a = via_seal.seal_round(txs.clone(), 500, &mut rng_a).unwrap();
        let b = via_among
            .seal_round_among(&[0, 1, 2], txs, 500, &mut rng_b)
            .unwrap();
        assert_eq!(a.mining.winner, b.mining.winner);
        assert_eq!(a.block.hash(), b.block.hash());
        assert_eq!(a.height, b.height);
    }

    #[test]
    fn partitioned_components_fork_and_heal_to_one_tip() {
        let mut consensus = group(3);
        let mut rng = StdRng::seed_from_u64(12);

        // One shared round before the split.
        consensus
            .seal_round(
                vec![Transaction::global_gradient(0, 1, vec![1])],
                1000,
                &mut rng,
            )
            .unwrap();

        // Partition: {0, 1} and {2} each mine their own branch; the
        // primary component seals two rounds, the secondary one.
        for round in 2..=3u64 {
            consensus
                .seal_round_among(
                    &[0, 1],
                    vec![Transaction::global_gradient(0, round, vec![round as u8])],
                    round * 1000,
                    &mut rng,
                )
                .unwrap();
        }
        consensus
            .seal_round_among(
                &[2],
                vec![Transaction::global_gradient(2, 2, vec![99])],
                2500,
                &mut rng,
            )
            .unwrap();

        // A real fork: the replicas disagree.
        assert_eq!(consensus.agreed_height(), None);
        assert_eq!(consensus.replicas[0].height(), 3);
        assert_eq!(consensus.replicas[2].height(), 2);
        assert_ne!(
            consensus.replicas[0].tip().hash(),
            consensus.replicas[2].tip().hash()
        );

        // Heal: the longer primary branch wins, the secondary block is
        // orphaned and surfaced for the reorg policy.
        let orphans = consensus.heal();
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].header.miner_id, 2);
        assert_eq!(consensus.agreed_height(), Some(3));
        for replica in &consensus.replicas {
            replica.validate_all().unwrap();
        }

        // Healing an agreed mesh is a no-op.
        assert!(consensus.heal().is_empty());
    }

    #[test]
    fn equal_length_fork_heals_toward_the_lowest_replica() {
        let mut consensus = group(2);
        let mut rng = StdRng::seed_from_u64(13);
        consensus
            .seal_round_among(
                &[0],
                vec![Transaction::global_gradient(0, 1, vec![1])],
                1000,
                &mut rng,
            )
            .unwrap();
        consensus
            .seal_round_among(
                &[1],
                vec![Transaction::global_gradient(1, 1, vec![2])],
                1100,
                &mut rng,
            )
            .unwrap();
        assert_eq!(consensus.agreed_height(), None);
        let expected_tip = consensus.replicas[0].tip().hash();
        let orphans = consensus.heal();
        assert_eq!(orphans.len(), 1);
        assert_eq!(consensus.agreed_height(), Some(1));
        assert_eq!(consensus.replicas[1].tip().hash(), expected_tip);
    }

    #[test]
    fn global_gradient_is_readable_from_latest_block() {
        let mut consensus = group(2);
        let mut rng = StdRng::seed_from_u64(7);
        consensus
            .seal_round(
                vec![Transaction::global_gradient(0, 1, vec![42])],
                0,
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            consensus.canonical_chain().latest_global_gradient(),
            Some((1, vec![42]))
        );
    }
}
