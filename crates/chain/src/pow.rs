//! Proof-of-work: difficulty, targets, nonce search, and the analytic
//! expected-work model.
//!
//! The paper's Equation 4 defines the puzzle as
//! `H(nonce + Block) < Target = Target_1 / difficulty` where `Target_1` is
//! the maximum target (the all-ones 256-bit value). A miner wins a round by
//! finding a nonce whose block hash falls below the target; the probability
//! of success per hash is `1 / difficulty`, so the expected number of hashes
//! per block equals the difficulty. The delay model in `bfl-core` uses
//! [`PowConfig::expected_hashes`] together with a miner's hash rate to turn
//! difficulty into seconds; this module also implements *actual* nonce
//! searches (sequential and multi-threaded) so the ledger substrate is a
//! real PoW chain, not a mock.
//!
//! The header searches ([`PowConfig::search_header`],
//! [`PowConfig::search_header_parallel`]) go through the block header's
//! SHA-256 midstate ([`crate::block::BlockHeader::pow_midstate`]): the
//! nonce is the last header field, so the 96-byte prefix is compressed
//! once per mining attempt and each nonce costs one final padded block —
//! half the compressions of hashing the full header, with no per-nonce
//! allocation.

use crate::block::{BlockHeader, PowMidstate};
use bfl_crypto::sha256::Digest;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mining difficulty, expressed as the expected number of hash evaluations
/// required to find a valid nonce (`Target = Target_1 / difficulty`).
pub type Difficulty = u64;

/// Nonces scanned per claim by each worker of the deterministic parallel
/// search. Small enough that workers notice a winner quickly, large
/// enough that the shared counter is off the hot path.
const PARALLEL_SEARCH_BLOCK: u64 = 4096;

/// Proof-of-work configuration shared by all miners in a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowConfig {
    /// Difficulty: expected hashes per block. Must be at least 1.
    pub difficulty: Difficulty,
    /// Worker threads the consensus nonce search uses: `1` keeps the
    /// serial loop, `0` means one worker per available core, and any
    /// other value is the exact worker count. The parallel search is
    /// deterministic (it returns the smallest satisfying nonce of the
    /// covered range), so this knob changes wall-clock time, never the
    /// mined block.
    pub mining_threads: usize,
}

impl Default for PowConfig {
    fn default() -> Self {
        // A light default so unit tests and examples mine instantly.
        PowConfig {
            difficulty: 1 << 12,
            mining_threads: 1,
        }
    }
}

impl PowConfig {
    /// Creates a configuration with the given difficulty (clamped to >= 1)
    /// and the serial nonce search.
    pub fn new(difficulty: Difficulty) -> Self {
        PowConfig {
            difficulty: difficulty.max(1),
            mining_threads: 1,
        }
    }

    /// Returns the configuration with the mining-thread knob set (see
    /// [`PowConfig::mining_threads`]).
    pub fn with_mining_threads(mut self, threads: usize) -> Self {
        self.mining_threads = threads;
        self
    }

    /// The worker count [`PowConfig::mining_threads`] resolves to: `0`
    /// becomes the machine's available parallelism.
    pub fn effective_mining_threads(&self) -> usize {
        match self.mining_threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }

    /// Expected number of hash evaluations to find a block at this difficulty.
    pub fn expected_hashes(&self) -> f64 {
        self.difficulty as f64
    }

    /// Checks whether `hash` satisfies the target implied by the difficulty.
    ///
    /// The hash is interpreted big-endian; its top 64 bits are compared with
    /// `u64::MAX / difficulty`, which realizes `H < Target_1 / difficulty`
    /// with enough resolution for any difficulty representable as `u64`.
    pub fn meets_target(&self, hash: &Digest) -> bool {
        let top = u64::from_be_bytes([
            hash[0], hash[1], hash[2], hash[3], hash[4], hash[5], hash[6], hash[7],
        ]);
        let target = u64::MAX / self.difficulty;
        top < target
    }

    /// Sequentially searches nonces in `[start_nonce, start_nonce + budget)`.
    ///
    /// `hash_with_nonce` must hash the candidate block with the provided
    /// nonce. Returns the first satisfying nonce, or `None` if the budget is
    /// exhausted.
    pub fn search<F>(&self, start_nonce: u64, budget: u64, mut hash_with_nonce: F) -> Option<u64>
    where
        F: FnMut(u64) -> Digest,
    {
        for offset in 0..budget {
            let nonce = start_nonce.wrapping_add(offset);
            if self.meets_target(&hash_with_nonce(nonce)) {
                return Some(nonce);
            }
        }
        None
    }

    /// Multi-threaded nonce search over `[0, threads * budget_per_thread)`
    /// with a **deterministic** winner: the returned nonce is the smallest
    /// satisfying nonce of the covered range, independent of thread
    /// scheduling, so parallel mining produces the same block a serial
    /// scan of the range would.
    ///
    /// The range is split into fixed-size blocks dealt round-robin to the
    /// workers. When a worker finds a satisfying nonce it publishes it
    /// with `fetch_min`; a worker abandons the race only when its next
    /// block starts above the published best, which guarantees every
    /// block below the final winner was fully scanned (the paper's
    /// mining competition, where "those who receive the message will stop
    /// their current computation" — except losers first finish anything
    /// that could still undercut the winner). Returns the winning nonce
    /// and the total number of hashes evaluated across all workers.
    pub fn search_parallel<F>(
        &self,
        threads: usize,
        budget_per_thread: u64,
        hash_with_nonce: F,
    ) -> (Option<u64>, u64)
    where
        F: Fn(u64) -> Digest + Sync,
    {
        let threads = threads.max(1);
        let total = (threads as u64).saturating_mul(budget_per_thread);
        self.search_range_parallel(threads, total, hash_with_nonce)
    }

    /// Deterministic parallel search over exactly `[0, total)` (the core
    /// behind [`Self::search_parallel`]; see there for the scheme). An
    /// exact total lets callers with a fixed hash budget keep it precise
    /// regardless of the worker count.
    fn search_range_parallel<F>(
        &self,
        threads: usize,
        total: u64,
        hash_with_nonce: F,
    ) -> (Option<u64>, u64)
    where
        F: Fn(u64) -> Digest + Sync,
    {
        let threads = threads.max(1);
        if threads == 1 {
            let found = self.search(0, total, &hash_with_nonce);
            // Mirror the parallel accounting: a found nonce means nonce+1
            // hashes were spent; exhaustion means the whole budget was.
            let hashes = found.map_or(total, |n| n + 1);
            return (found, hashes);
        }
        let per_thread = (total / threads as u64).max(1);
        let block = PARALLEL_SEARCH_BLOCK.min(per_thread);
        let blocks = total.div_ceil(block);
        let best = AtomicU64::new(u64::MAX);
        let total_hashes = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for worker in 0..threads as u64 {
                let hash_fn = &hash_with_nonce;
                let best = &best;
                let total_hashes = &total_hashes;
                let config = *self;
                scope.spawn(move || {
                    let mut local_hashes = 0u64;
                    let mut index = worker;
                    while index < blocks {
                        let start = index * block;
                        // Nothing in this block (or any later one of this
                        // worker) can undercut the published winner.
                        if start > best.load(Ordering::Acquire) {
                            break;
                        }
                        let end = (start + block).min(total);
                        for nonce in start..end {
                            local_hashes += 1;
                            if config.meets_target(&hash_fn(nonce)) {
                                best.fetch_min(nonce, Ordering::AcqRel);
                                break;
                            }
                        }
                        index += threads as u64;
                    }
                    total_hashes.fetch_add(local_hashes, Ordering::Relaxed);
                });
            }
        });

        let winner = best.load(Ordering::Acquire);
        let winner = if winner == u64::MAX {
            None
        } else {
            Some(winner)
        };
        (winner, total_hashes.load(Ordering::Relaxed))
    }

    /// Sequential nonce search over `header`, hashing through its
    /// precomputed midstate (one compression per nonce).
    pub fn search_header(
        &self,
        header: &BlockHeader,
        start_nonce: u64,
        budget: u64,
    ) -> Option<u64> {
        let midstate = header.pow_midstate();
        self.search(start_nonce, budget, |nonce| midstate.hash_with_nonce(nonce))
    }

    /// Multi-threaded nonce search over `header` through its midstate;
    /// each worker hashes via a clone of the midstate, so the 96-byte
    /// prefix is compressed once for the whole race.
    pub fn search_header_parallel(
        &self,
        header: &BlockHeader,
        threads: usize,
        budget_per_thread: u64,
    ) -> (Option<u64>, u64) {
        let midstate: PowMidstate = header.pow_midstate();
        self.search_parallel(threads, budget_per_thread, move |nonce| {
            midstate.hash_with_nonce(nonce)
        })
    }

    /// Like [`Self::search_header_parallel`], but over exactly the nonce
    /// range `[0, budget)` — the same range the serial
    /// [`Self::search_header`] scans — so consensus mining covers an
    /// identical search space at every worker count.
    pub fn search_header_parallel_budget(
        &self,
        header: &BlockHeader,
        threads: usize,
        budget: u64,
    ) -> (Option<u64>, u64) {
        let midstate: PowMidstate = header.pow_midstate();
        self.search_range_parallel(threads, budget, move |nonce| {
            midstate.hash_with_nonce(nonce)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_crypto::sha256::sha256;

    fn header_hash(nonce: u64) -> Digest {
        let mut bytes = b"test-header".to_vec();
        bytes.extend_from_slice(&nonce.to_be_bytes());
        sha256(&bytes)
    }

    #[test]
    fn difficulty_one_accepts_almost_everything() {
        let config = PowConfig::new(1);
        // With difficulty 1 the target is u64::MAX, so any hash whose top
        // 64 bits are not all ones passes; a random hash essentially always does.
        assert!(config.meets_target(&header_hash(0)));
        assert!(config.meets_target(&header_hash(123_456)));
    }

    #[test]
    fn zero_difficulty_is_clamped() {
        assert_eq!(PowConfig::new(0).difficulty, 1);
    }

    #[test]
    fn higher_difficulty_is_strictly_harder() {
        let easy = PowConfig::new(4);
        let hard = PowConfig::new(1 << 20);
        // Every hash accepted by the hard config is accepted by the easy one.
        let mut hard_accepts = 0;
        for nonce in 0..20_000u64 {
            let h = header_hash(nonce);
            if hard.meets_target(&h) {
                hard_accepts += 1;
                assert!(easy.meets_target(&h));
            }
        }
        // The hard config should accept only a tiny fraction.
        assert!(
            hard_accepts < 10,
            "hard difficulty accepted {hard_accepts} of 20000"
        );
    }

    #[test]
    fn expected_hashes_equals_difficulty() {
        assert_eq!(PowConfig::new(500).expected_hashes(), 500.0);
        assert_eq!(PowConfig::default().expected_hashes(), 4096.0);
    }

    #[test]
    fn sequential_search_finds_valid_nonce() {
        let config = PowConfig::new(64);
        let nonce = config
            .search(0, 1_000_000, header_hash)
            .expect("a difficulty-64 puzzle must be solvable within a million hashes");
        assert!(config.meets_target(&header_hash(nonce)));
    }

    #[test]
    fn sequential_search_respects_budget() {
        let config = PowConfig::new(u64::MAX / 2); // essentially unsolvable
        assert_eq!(config.search(0, 100, header_hash), None);
    }

    #[test]
    fn search_is_deterministic_for_fixed_input() {
        let config = PowConfig::new(256);
        let a = config.search(0, 1_000_000, header_hash);
        let b = config.search(0, 1_000_000, header_hash);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_search_finds_valid_nonce_and_counts_hashes() {
        let config = PowConfig::new(64);
        let (nonce, hashes) = config.search_parallel(4, 250_000, header_hash);
        let nonce = nonce.expect("parallel search must find a difficulty-64 solution");
        assert!(config.meets_target(&header_hash(nonce)));
        assert!(hashes > 0);
    }

    #[test]
    fn parallel_search_is_deterministic_and_matches_serial() {
        let config = PowConfig::new(256);
        let serial = config.search(0, 1_000_000, header_hash);
        assert!(serial.is_some());
        // The deterministic parallel search returns the smallest
        // satisfying nonce of the covered range — i.e. exactly what the
        // serial scan finds — for every worker count.
        for threads in [1usize, 2, 3, 4] {
            let per_thread = 1_000_000u64.div_ceil(threads as u64);
            for _ in 0..3 {
                let (nonce, _) = config.search_parallel(threads, per_thread, header_hash);
                assert_eq!(nonce, serial, "threads={threads}");
            }
        }
    }

    #[test]
    fn mining_threads_knob_resolves() {
        assert_eq!(PowConfig::new(8).mining_threads, 1);
        assert_eq!(PowConfig::new(8).effective_mining_threads(), 1);
        let parallel = PowConfig::new(8).with_mining_threads(3);
        assert_eq!(parallel.effective_mining_threads(), 3);
        assert_eq!(parallel.difficulty, 8);
        // 0 resolves to the machine's parallelism, never zero.
        assert!(
            PowConfig::new(8)
                .with_mining_threads(0)
                .effective_mining_threads()
                >= 1
        );
    }

    #[test]
    fn parallel_search_with_impossible_target_exhausts_budget() {
        let config = PowConfig::new(u64::MAX / 2);
        let (nonce, hashes) = config.search_parallel(2, 50, header_hash);
        assert!(nonce.is_none());
        assert_eq!(hashes, 100);
    }

    #[test]
    fn parallel_search_with_zero_threads_is_clamped() {
        let config = PowConfig::new(16);
        let (nonce, _) = config.search_parallel(0, 100_000, header_hash);
        assert!(nonce.is_some());
    }

    fn sample_header() -> crate::block::BlockHeader {
        let genesis = crate::block::Block::genesis();
        crate::block::Block::candidate(&genesis, vec![], 99, 1, 7).header
    }

    #[test]
    fn header_search_matches_full_header_search() {
        let header = sample_header();
        let config = PowConfig::new(64);
        let via_midstate = config.search_header(&header, 0, 1_000_000);
        let via_full = config.search(0, 1_000_000, |n| header.hash_with_nonce(n));
        assert_eq!(via_midstate, via_full);
        assert!(via_midstate.is_some());
    }

    #[test]
    fn parallel_header_search_finds_valid_nonce() {
        let header = sample_header();
        let config = PowConfig::new(64);
        let (nonce, hashes) = config.search_header_parallel(&header, 4, 250_000);
        let nonce = nonce.expect("difficulty 64 must be solvable");
        assert!(config.meets_target(&header.hash_with_nonce(nonce)));
        assert!(hashes > 0);
    }
}
