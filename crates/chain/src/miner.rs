//! Miner identities, hash rates, and per-round mining outcomes.
//!
//! A miner in BFL plays two roles (paper Table 1: "the miner S_k in BFL and
//! blockchain, or a server in FL"): it aggregates gradients like a server
//! and competes in the PoW lottery. For the delay figures the interesting
//! quantity is *how long* the mining competition takes, which depends on the
//! difficulty and the competing hash power; this module provides both an
//! analytic sample (exponential race) and a real nonce search.

use crate::block::Block;
use crate::pow::PowConfig;
use rand::Rng;

/// A mining participant with an identity and a hash rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Miner {
    /// Stable identifier (also recorded in blocks this miner wins).
    pub id: u64,
    /// Hash evaluations per second this miner can sustain.
    pub hash_rate: f64,
}

/// The outcome of one mining competition.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningOutcome {
    /// Identifier of the winning miner.
    pub winner: u64,
    /// Time in seconds until the winner found a solution.
    pub time_seconds: f64,
    /// Expected number of hash evaluations spent network-wide.
    pub hashes_spent: f64,
}

impl Miner {
    /// Creates a miner with the given id and hash rate (hashes/second).
    pub fn new(id: u64, hash_rate: f64) -> Self {
        assert!(hash_rate > 0.0, "hash rate must be positive");
        Miner { id, hash_rate }
    }

    /// Expected solo mining time in seconds at the given difficulty.
    pub fn expected_solo_time(&self, config: &PowConfig) -> f64 {
        config.expected_hashes() / self.hash_rate
    }

    /// Performs a real bounded nonce search on `candidate`, returning the
    /// number of hashes spent if a proof was found.
    ///
    /// With [`PowConfig::mining_threads`] above one, the search fans out
    /// over the configured worker count through the deterministic
    /// parallel search covering exactly the serial range `[0, budget)`:
    /// the winning nonce is the smallest satisfying nonce of that range
    /// at every worker count, so the sealed block — and whether the
    /// budget suffices at all — is identical to the serial search. Only
    /// the wall-clock changes.
    pub fn mine_block(
        &self,
        candidate: &mut Block,
        config: &PowConfig,
        budget: u64,
    ) -> Option<u64> {
        candidate.header.difficulty = config.difficulty;
        candidate.header.miner_id = self.id;
        let threads = config.effective_mining_threads();
        let nonce = if threads > 1 {
            config
                .search_header_parallel_budget(&candidate.header, threads, budget)
                .0?
        } else {
            config.search_header(&candidate.header, 0, budget)?
        };
        candidate.header.nonce = nonce;
        Some(nonce + 1)
    }
}

/// Samples the outcome of a mining race between `miners` at `config`'s
/// difficulty.
///
/// Each miner's time-to-solution is exponentially distributed with rate
/// `hash_rate / difficulty`; the minimum wins. This is the standard
/// memoryless model of PoW mining and is what the delay figures use so that
/// wall-clock time does not depend on the host machine.
pub fn sample_competition<R: Rng + ?Sized>(
    miners: &[Miner],
    config: &PowConfig,
    rng: &mut R,
) -> MiningOutcome {
    assert!(
        !miners.is_empty(),
        "a mining competition needs at least one miner"
    );
    let mut best_time = f64::INFINITY;
    let mut winner = miners[0].id;
    for miner in miners {
        let rate = miner.hash_rate / config.expected_hashes();
        // Inverse-CDF sample of Exp(rate); guard against u == 0.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let t = -u.ln() / rate;
        if t < best_time {
            best_time = t;
            winner = miner.id;
        }
    }
    let total_rate: f64 = miners.iter().map(|m| m.hash_rate).sum();
    MiningOutcome {
        winner,
        time_seconds: best_time,
        hashes_spent: best_time * total_rate,
    }
}

/// Expected duration of the competition: difficulty divided by the total
/// hash power (the minimum of exponentials is exponential with the summed
/// rate).
pub fn expected_competition_time(miners: &[Miner], config: &PowConfig) -> f64 {
    let total_rate: f64 = miners.iter().map(|m| m.hash_rate).sum();
    config.expected_hashes() / total_rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "hash rate must be positive")]
    fn zero_hash_rate_is_rejected() {
        let _ = Miner::new(1, 0.0);
    }

    #[test]
    fn expected_solo_time_scales_with_difficulty() {
        let miner = Miner::new(1, 1000.0);
        let slow = miner.expected_solo_time(&PowConfig::new(10_000));
        let fast = miner.expected_solo_time(&PowConfig::new(100));
        assert!(slow > fast);
        assert!((slow - 10.0).abs() < 1e-9);
        assert!((fast - 0.1).abs() < 1e-9);
    }

    #[test]
    fn mine_block_produces_valid_proof() {
        let miner = Miner::new(3, 1000.0);
        let genesis = Block::genesis();
        let mut candidate = Block::candidate(&genesis, vec![], 0, 1, 0);
        let config = PowConfig::new(32);
        let hashes = miner
            .mine_block(&mut candidate, &config, 1_000_000)
            .expect("difficulty 32 is solvable");
        assert!(hashes >= 1);
        assert!(candidate.proof_is_valid());
        assert_eq!(candidate.header.miner_id, 3);
    }

    #[test]
    fn parallel_mining_seals_the_same_block_as_serial() {
        let miner = Miner::new(3, 1000.0);
        let genesis = Block::genesis();
        let serial_config = PowConfig::new(64);
        let parallel_config = PowConfig::new(64).with_mining_threads(4);

        let mut serial_block = Block::candidate(&genesis, vec![], 0, 1, 0);
        miner
            .mine_block(&mut serial_block, &serial_config, 1_000_000)
            .expect("serial mining succeeds");
        let mut parallel_block = Block::candidate(&genesis, vec![], 0, 1, 0);
        miner
            .mine_block(&mut parallel_block, &parallel_config, 1_000_000)
            .expect("parallel mining succeeds");

        assert_eq!(serial_block.header.nonce, parallel_block.header.nonce);
        assert_eq!(serial_block.hash(), parallel_block.hash());
        assert!(parallel_block.proof_is_valid());
    }

    #[test]
    fn mine_block_respects_budget() {
        let miner = Miner::new(3, 1000.0);
        let genesis = Block::genesis();
        let mut candidate = Block::candidate(&genesis, vec![], 0, 1, 0);
        let config = PowConfig::new(u64::MAX / 2);
        assert!(miner.mine_block(&mut candidate, &config, 16).is_none());
        // The parallel search covers the identical [0, budget) range, so
        // it fails on exactly the budgets the serial search fails on —
        // including budgets not divisible by the worker count.
        let parallel = config.with_mining_threads(3);
        assert!(miner.mine_block(&mut candidate, &parallel, 16).is_none());
        assert!(miner.mine_block(&mut candidate, &parallel, 17).is_none());
    }

    #[test]
    fn competition_winner_is_among_participants() {
        let mut rng = StdRng::seed_from_u64(9);
        let miners = vec![
            Miner::new(1, 100.0),
            Miner::new(2, 100.0),
            Miner::new(3, 100.0),
        ];
        let config = PowConfig::new(1000);
        for _ in 0..50 {
            let outcome = sample_competition(&miners, &config, &mut rng);
            assert!(miners.iter().any(|m| m.id == outcome.winner));
            assert!(outcome.time_seconds > 0.0);
            assert!(outcome.hashes_spent > 0.0);
        }
    }

    #[test]
    fn faster_miner_wins_more_often() {
        let mut rng = StdRng::seed_from_u64(10);
        let miners = vec![Miner::new(1, 1000.0), Miner::new(2, 10.0)];
        let config = PowConfig::new(1000);
        let mut wins = [0u32; 2];
        for _ in 0..500 {
            let outcome = sample_competition(&miners, &config, &mut rng);
            wins[(outcome.winner - 1) as usize] += 1;
        }
        assert!(
            wins[0] > wins[1] * 5,
            "fast miner won {} vs {}",
            wins[0],
            wins[1]
        );
    }

    #[test]
    fn expected_time_halves_with_double_hash_power() {
        let config = PowConfig::new(10_000);
        let one = vec![Miner::new(1, 100.0)];
        let two = vec![Miner::new(1, 100.0), Miner::new(2, 100.0)];
        let t1 = expected_competition_time(&one, &config);
        let t2 = expected_competition_time(&two, &config);
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_sampled_time_tracks_expectation() {
        let mut rng = StdRng::seed_from_u64(11);
        let miners = vec![Miner::new(1, 200.0), Miner::new(2, 300.0)];
        let config = PowConfig::new(5_000);
        let expected = expected_competition_time(&miners, &config);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| sample_competition(&miners, &config, &mut rng).time_seconds)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "sampled mean {mean} vs expected {expected}"
        );
    }
}
