//! Blocks and block headers.
//!
//! A block packs the transactions of one communication round behind a
//! header that commits to the previous block's hash, the Merkle root of the
//! body, a simulated timestamp, the PoW difficulty and the nonce found by
//! the winning miner. Under FAIR-BFL's Assumption 2 the body contains the
//! round's single global-gradient transaction plus reward transactions;
//! under vanilla BFL it contains whatever local-gradient transactions fit
//! below the block-size limit.

use crate::merkle::merkle_root;
use crate::pow::{Difficulty, PowConfig};
use crate::transaction::Transaction;
use bfl_crypto::sha256::{sha256, to_hex, Digest, Sha256};
use serde::{Deserialize, Serialize};

/// Header committed to by the proof-of-work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Height of the block (genesis is 0).
    pub index: u64,
    /// Hash of the previous block's header.
    pub previous_hash: Digest,
    /// Merkle root of the transaction ids in the body.
    pub merkle_root: Digest,
    /// Simulated timestamp in milliseconds since the start of the run.
    pub timestamp_ms: u64,
    /// Difficulty the block was mined at.
    pub difficulty: Difficulty,
    /// Nonce found by the winning miner.
    pub nonce: u64,
    /// Identifier of the miner that produced the block.
    pub miner_id: u64,
}

/// Serialized header length in bytes: five `u64` fields plus two
/// 32-byte digests.
const HEADER_LEN: usize = 104;
/// Byte offset of the nonce — the final header field, so everything
/// before it is nonce-independent and can be absorbed into a midstate.
const NONCE_OFFSET: usize = HEADER_LEN - 8;

impl BlockHeader {
    /// Serializes the header with the given nonce substituted. The nonce
    /// is the **last** field so that mining can precompute the SHA-256
    /// midstate of the 96-byte prefix once and re-hash only the final
    /// padded block per nonce (Equation 4's `H(nonce + Block)`).
    fn serialize_with_nonce(&self, nonce: u64) -> [u8; HEADER_LEN] {
        let mut bytes = [0u8; HEADER_LEN];
        bytes[0..8].copy_from_slice(&self.index.to_be_bytes());
        bytes[8..40].copy_from_slice(&self.previous_hash);
        bytes[40..72].copy_from_slice(&self.merkle_root);
        bytes[72..80].copy_from_slice(&self.timestamp_ms.to_be_bytes());
        bytes[80..88].copy_from_slice(&self.difficulty.to_be_bytes());
        bytes[88..96].copy_from_slice(&self.miner_id.to_be_bytes());
        bytes[NONCE_OFFSET..].copy_from_slice(&nonce.to_be_bytes());
        bytes
    }

    /// Hashes the full header (with the given nonce substituted).
    ///
    /// This is the reference hash: [`PowMidstate::hash_with_nonce`] is
    /// pinned to it bit-for-bit by the equivalence tests.
    pub fn hash_with_nonce(&self, nonce: u64) -> Digest {
        sha256(&self.serialize_with_nonce(nonce))
    }

    /// Precomputes the SHA-256 midstate over the nonce-independent
    /// 96-byte header prefix. Per-nonce hashing through the midstate
    /// compresses one padded block instead of two and allocates nothing.
    ///
    /// The midstate commits to every header field except the nonce;
    /// mutate the header and the midstate is stale.
    pub fn pow_midstate(&self) -> PowMidstate {
        let bytes = self.serialize_with_nonce(0);
        let mut hasher = Sha256::new();
        hasher.update(&bytes[..NONCE_OFFSET]);
        PowMidstate { hasher }
    }

    /// Hash of the header with its recorded nonce.
    pub fn hash(&self) -> Digest {
        self.hash_with_nonce(self.nonce)
    }
}

/// SHA-256 midstate of a block header's nonce-independent prefix.
///
/// Cheap to clone (eight words of state plus half a block of buffered
/// bytes), so parallel miners hand each worker its own copy.
#[derive(Debug, Clone)]
pub struct PowMidstate {
    hasher: Sha256,
}

impl PowMidstate {
    /// Hashes the committed header with `nonce` appended — only the
    /// final padded SHA-256 block is processed.
    pub fn hash_with_nonce(&self, nonce: u64) -> Digest {
        let mut hasher = self.hasher.clone();
        hasher.update(&nonce.to_be_bytes());
        hasher.finalize()
    }
}

/// A block: header plus transaction body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The proof-of-work header.
    pub header: BlockHeader,
    /// Transactions recorded in the block.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Builds the genesis block (height 0, no transactions, zero difficulty).
    pub fn genesis() -> Block {
        let header = BlockHeader {
            index: 0,
            previous_hash: [0u8; 32],
            merkle_root: merkle_root(&[]),
            timestamp_ms: 0,
            difficulty: 1,
            nonce: 0,
            miner_id: 0,
        };
        Block {
            header,
            transactions: Vec::new(),
        }
    }

    /// Assembles an unmined candidate block on top of `previous`.
    pub fn candidate(
        previous: &Block,
        transactions: Vec<Transaction>,
        timestamp_ms: u64,
        difficulty: Difficulty,
        miner_id: u64,
    ) -> Block {
        let leaves: Vec<Digest> = transactions.iter().map(|tx| tx.id()).collect();
        let header = BlockHeader {
            index: previous.header.index + 1,
            previous_hash: previous.header.hash(),
            merkle_root: merkle_root(&leaves),
            timestamp_ms,
            difficulty,
            nonce: 0,
            miner_id,
        };
        Block {
            header,
            transactions,
        }
    }

    /// Hash of the block (its header hash).
    pub fn hash(&self) -> Digest {
        self.header.hash()
    }

    /// Hash rendered as hex, convenient for logs and examples.
    pub fn hash_hex(&self) -> String {
        to_hex(&self.hash())
    }

    /// Total serialized size of the block body in bytes.
    pub fn size_bytes(&self) -> usize {
        HEADER_LEN
            + self
                .transactions
                .iter()
                .map(Transaction::size_bytes)
                .sum::<usize>()
    }

    /// Recomputes the Merkle root from the body and compares with the header.
    pub fn merkle_consistent(&self) -> bool {
        let leaves: Vec<Digest> = self.transactions.iter().map(|tx| tx.id()).collect();
        merkle_root(&leaves) == self.header.merkle_root
    }

    /// True when the recorded nonce satisfies the block's own difficulty.
    pub fn proof_is_valid(&self) -> bool {
        PowConfig::new(self.header.difficulty).meets_target(&self.hash())
    }

    /// Mines the block in place: searches nonces until the proof is valid.
    ///
    /// Returns the number of hash evaluations spent. Genesis-style blocks at
    /// difficulty 1 typically succeed on the first try.
    pub fn mine(&mut self, config: &PowConfig) -> u64 {
        self.header.difficulty = config.difficulty;
        let midstate = self.header.pow_midstate();
        let mut attempts = 0u64;
        let mut nonce = 0u64;
        loop {
            attempts += 1;
            let hash = midstate.hash_with_nonce(nonce);
            if config.meets_target(&hash) {
                self.header.nonce = nonce;
                return attempts;
            }
            nonce = nonce.wrapping_add(1);
        }
    }

    /// True if the block records no transactions — the "empty block" the
    /// paper's tight-coupling assumption is designed to avoid.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Returns the global-gradient payload recorded in this block, if any.
    pub fn global_gradient_payload(&self) -> Option<(u64, &[u8])> {
        self.transactions.iter().find_map(|tx| match &tx.kind {
            crate::transaction::TransactionKind::GlobalGradient { round, payload } => {
                Some((*round, payload.as_slice()))
            }
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_consistent() {
        let g = Block::genesis();
        assert_eq!(g.header.index, 0);
        assert!(g.is_empty());
        assert!(g.merkle_consistent());
        assert_eq!(g.header.previous_hash, [0u8; 32]);
        assert!(g.global_gradient_payload().is_none());
    }

    #[test]
    fn candidate_links_to_previous() {
        let g = Block::genesis();
        let txs = vec![Transaction::global_gradient(1, 1, vec![1, 2, 3])];
        let b = Block::candidate(&g, txs, 1500, 8, 1);
        assert_eq!(b.header.index, 1);
        assert_eq!(b.header.previous_hash, g.hash());
        assert_eq!(b.header.miner_id, 1);
        assert!(b.merkle_consistent());
        assert_eq!(b.global_gradient_payload(), Some((1, &[1u8, 2, 3][..])));
    }

    #[test]
    fn hash_changes_with_nonce_and_content() {
        let g = Block::genesis();
        let b1 = Block::candidate(&g, vec![Transaction::reward(1, 1, 2, 10)], 0, 1, 1);
        let mut b2 = b1.clone();
        b2.header.nonce = 42;
        assert_ne!(b1.hash(), b2.hash());

        let b3 = Block::candidate(&g, vec![Transaction::reward(1, 1, 2, 11)], 0, 1, 1);
        assert_ne!(b1.hash(), b3.hash());
    }

    #[test]
    fn tampering_with_body_breaks_merkle_consistency() {
        let g = Block::genesis();
        let mut b = Block::candidate(&g, vec![Transaction::reward(1, 1, 2, 10)], 0, 1, 1);
        assert!(b.merkle_consistent());
        b.transactions.push(Transaction::reward(1, 1, 3, 10));
        assert!(!b.merkle_consistent());
    }

    #[test]
    fn mining_produces_a_valid_proof() {
        let g = Block::genesis();
        let mut b = Block::candidate(&g, vec![Transaction::reward(1, 1, 2, 10)], 0, 64, 1);
        let config = PowConfig::new(64);
        let attempts = b.mine(&config);
        assert!(attempts >= 1);
        assert!(b.proof_is_valid());
        assert_eq!(b.header.difficulty, 64);
    }

    #[test]
    fn size_grows_with_payload() {
        let g = Block::genesis();
        let small = Block::candidate(&g, vec![Transaction::reward(1, 1, 2, 10)], 0, 1, 1);
        let large = Block::candidate(
            &g,
            vec![Transaction::local_gradient(1, 1, vec![0u8; 50_000])],
            0,
            1,
            1,
        );
        assert!(large.size_bytes() > small.size_bytes());
        assert!(large.size_bytes() > 50_000);
    }

    #[test]
    fn hash_hex_is_64_chars() {
        assert_eq!(Block::genesis().hash_hex().len(), 64);
    }

    #[test]
    fn midstate_hash_matches_full_header_hash() {
        let g = Block::genesis();
        let b = Block::candidate(&g, vec![Transaction::reward(3, 2, 9, 11)], 123, 17, 4);
        let midstate = b.header.pow_midstate();
        for nonce in [0u64, 1, 42, u32::MAX as u64, u64::MAX] {
            assert_eq!(
                midstate.hash_with_nonce(nonce),
                b.header.hash_with_nonce(nonce),
                "midstate diverged at nonce {nonce}"
            );
        }
    }

    #[test]
    fn midstate_commits_to_all_prefix_fields() {
        let g = Block::genesis();
        let b = Block::candidate(&g, vec![Transaction::reward(1, 1, 2, 10)], 5, 8, 1);
        let before = b.header.pow_midstate().hash_with_nonce(7);
        let mut tampered = b.clone();
        tampered.header.timestamp_ms += 1;
        assert_ne!(tampered.header.pow_midstate().hash_with_nonce(7), before);
        let mut tampered = b;
        tampered.header.miner_id += 1;
        assert_ne!(tampered.header.pow_midstate().hash_with_nonce(7), before);
    }

    #[test]
    fn serde_round_trip() {
        let g = Block::genesis();
        let b = Block::candidate(&g, vec![Transaction::reward(1, 1, 2, 10)], 77, 4, 3);
        let json = serde_json::to_string(&b).unwrap();
        let back: Block = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.hash(), b.hash());
    }
}
