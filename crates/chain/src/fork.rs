//! Forking model for the vanilla-blockchain baseline.
//!
//! The paper observes that in loosely-coupled BFL "forking is inevitable"
//! and that, as more miners join the competition, "the probability of
//! forking will significantly increase, which will take more time to merge
//! conflicts" — that is what makes the blockchain baseline's delay grow
//! roughly exponentially with the number of miners in Figure 6b.
//!
//! The model here is the standard race analysis: a fork happens when a
//! second miner solves the puzzle within the block-propagation window after
//! the first solution. With `m` miners of equal hash power `h`, total rate
//! `λ = m·h / difficulty`, and propagation delay `τ`, the probability that
//! at least one of the remaining `m−1` miners also solves within `τ` is
//! `1 − exp(−λ·τ·(m−1)/m)`. Each fork costs one extra consensus round
//! (re-mining plus propagation), and forks can cascade, giving an expected
//! resolution overhead of `p/(1−p)` extra block intervals.

use crate::miner::Miner;
use crate::pow::PowConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the fork model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForkModel {
    /// One-way block propagation delay between miners, in seconds.
    pub propagation_delay_s: f64,
    /// Extra coordination overhead per fork resolution, in seconds
    /// (ledger-conflict merging, abandoned-update recovery).
    pub resolution_overhead_s: f64,
}

impl Default for ForkModel {
    fn default() -> Self {
        ForkModel {
            propagation_delay_s: 1.0,
            resolution_overhead_s: 2.0,
        }
    }
}

impl ForkModel {
    /// Creates a fork model with the given propagation delay and resolution
    /// overhead (both in seconds, both must be non-negative).
    pub fn new(propagation_delay_s: f64, resolution_overhead_s: f64) -> Self {
        assert!(propagation_delay_s >= 0.0 && resolution_overhead_s >= 0.0);
        ForkModel {
            propagation_delay_s,
            resolution_overhead_s,
        }
    }

    /// Probability that a round forks, given the competing miners and the
    /// PoW difficulty.
    pub fn fork_probability(&self, miners: &[Miner], config: &PowConfig) -> f64 {
        if miners.len() < 2 {
            return 0.0;
        }
        let total_rate: f64 =
            miners.iter().map(|m| m.hash_rate).sum::<f64>() / config.expected_hashes();
        let others_fraction = (miners.len() - 1) as f64 / miners.len() as f64;
        1.0 - (-total_rate * self.propagation_delay_s * others_fraction).exp()
    }

    /// Expected number of *extra* block intervals spent resolving forks per
    /// produced block (`p / (1 - p)` for fork probability `p`, capped to
    /// keep the model finite when `p` approaches 1).
    pub fn expected_extra_rounds(&self, miners: &[Miner], config: &PowConfig) -> f64 {
        let p = self.fork_probability(miners, config).min(0.95);
        p / (1.0 - p)
    }

    /// Expected additional delay in seconds contributed by fork resolution,
    /// given the expected duration of one mining competition.
    pub fn expected_fork_delay(
        &self,
        miners: &[Miner],
        config: &PowConfig,
        block_interval_s: f64,
    ) -> f64 {
        let extra_rounds = self.expected_extra_rounds(miners, config);
        extra_rounds * (block_interval_s + self.resolution_overhead_s + self.propagation_delay_s)
    }

    /// Samples whether a particular round forks.
    pub fn sample_fork<R: Rng + ?Sized>(
        &self,
        miners: &[Miner],
        config: &PowConfig,
        rng: &mut R,
    ) -> bool {
        rng.gen::<f64>() < self.fork_probability(miners, config)
    }

    /// Samples the number of cascading fork resolutions in a round
    /// (geometric in the fork probability).
    pub fn sample_fork_cascade<R: Rng + ?Sized>(
        &self,
        miners: &[Miner],
        config: &PowConfig,
        rng: &mut R,
    ) -> u32 {
        let p = self.fork_probability(miners, config).min(0.95);
        let mut depth = 0;
        while rng.gen::<f64>() < p && depth < 64 {
            depth += 1;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fleet(m: usize) -> Vec<Miner> {
        (0..m as u64).map(|id| Miner::new(id, 500.0)).collect()
    }

    #[test]
    fn single_miner_never_forks() {
        let model = ForkModel::default();
        let config = PowConfig::new(1000);
        assert_eq!(model.fork_probability(&fleet(1), &config), 0.0);
        assert_eq!(model.expected_extra_rounds(&fleet(1), &config), 0.0);
        assert_eq!(model.expected_fork_delay(&fleet(1), &config, 10.0), 0.0);
    }

    #[test]
    fn fork_probability_grows_with_miner_count() {
        let model = ForkModel::default();
        let config = PowConfig::new(5_000);
        let mut last = 0.0;
        for m in [2usize, 4, 6, 8, 10] {
            let p = model.fork_probability(&fleet(m), &config);
            assert!(p > last, "p({m}) = {p} should exceed {last}");
            assert!(p < 1.0);
            last = p;
        }
    }

    #[test]
    fn fork_probability_shrinks_with_difficulty() {
        let model = ForkModel::default();
        let easy = model.fork_probability(&fleet(4), &PowConfig::new(1_000));
        let hard = model.fork_probability(&fleet(4), &PowConfig::new(1_000_000));
        assert!(hard < easy);
    }

    #[test]
    fn expected_fork_delay_grows_superlinearly_with_miners() {
        let model = ForkModel::default();
        let config = PowConfig::new(5_000);
        let d2 = model.expected_fork_delay(&fleet(2), &config, 10.0);
        let d6 = model.expected_fork_delay(&fleet(6), &config, 10.0);
        let d10 = model.expected_fork_delay(&fleet(10), &config, 10.0);
        assert!(d6 > d2);
        assert!(d10 > d6);
        // Superlinear growth: the marginal cost of the last four miners
        // exceeds that of the first four.
        assert!(d10 - d6 > d6 - d2);
    }

    #[test]
    fn sampled_fork_rate_tracks_probability() {
        let model = ForkModel::default();
        let config = PowConfig::new(2_000);
        let miners = fleet(5);
        let p = model.fork_probability(&miners, &config);
        let mut rng = StdRng::seed_from_u64(77);
        let n = 5_000;
        let observed = (0..n)
            .filter(|_| model.sample_fork(&miners, &config, &mut rng))
            .count() as f64
            / n as f64;
        assert!((observed - p).abs() < 0.05, "observed {observed} vs p {p}");
    }

    #[test]
    fn cascade_depth_is_bounded_and_non_negative() {
        let model = ForkModel::new(5.0, 1.0);
        let config = PowConfig::new(100);
        let miners = fleet(10);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let depth = model.sample_fork_cascade(&miners, &config, &mut rng);
            assert!(depth <= 64);
        }
    }

    #[test]
    #[should_panic]
    fn negative_parameters_are_rejected() {
        let _ = ForkModel::new(-1.0, 0.0);
    }
}
