//! Error types for the ledger substrate.

use std::fmt;

/// Errors raised while validating or extending the blockchain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A block's `previous_hash` does not match the chain tip.
    BrokenLink {
        /// Height at which the mismatch was detected.
        height: u64,
    },
    /// A block's recorded index does not match its position.
    WrongIndex {
        /// Index recorded in the block header.
        expected: u64,
        /// Index implied by the chain position.
        found: u64,
    },
    /// The block hash does not satisfy the proof-of-work target.
    InsufficientWork,
    /// The Merkle root recorded in the header does not match the body.
    MerkleMismatch,
    /// A transaction failed signature verification.
    BadTransaction(String),
    /// The block exceeds the configured maximum size.
    BlockTooLarge {
        /// Serialized size of the offending block in bytes.
        size: usize,
        /// Configured limit in bytes.
        limit: usize,
    },
    /// The chain is empty where a block was required.
    EmptyChain,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BrokenLink { height } => {
                write!(f, "previous-hash link broken at height {height}")
            }
            ChainError::WrongIndex { expected, found } => {
                write!(
                    f,
                    "block index mismatch: header says {expected}, position is {found}"
                )
            }
            ChainError::InsufficientWork => write!(f, "block hash does not meet the PoW target"),
            ChainError::MerkleMismatch => write!(f, "merkle root does not match block body"),
            ChainError::BadTransaction(msg) => write!(f, "invalid transaction: {msg}"),
            ChainError::BlockTooLarge { size, limit } => {
                write!(f, "block of {size} bytes exceeds the {limit}-byte limit")
            }
            ChainError::EmptyChain => write!(f, "operation requires a non-empty chain"),
        }
    }
}

impl std::error::Error for ChainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ChainError::BrokenLink { height: 9 }
            .to_string()
            .contains('9'));
        assert!(ChainError::WrongIndex {
            expected: 3,
            found: 4
        }
        .to_string()
        .contains('3'));
        assert!(ChainError::BlockTooLarge { size: 10, limit: 5 }
            .to_string()
            .contains("10"));
        assert!(!ChainError::InsufficientWork.to_string().is_empty());
        assert!(!ChainError::MerkleMismatch.to_string().is_empty());
        assert!(ChainError::BadTransaction("sig".into())
            .to_string()
            .contains("sig"));
        assert!(!ChainError::EmptyChain.to_string().is_empty());
    }
}
