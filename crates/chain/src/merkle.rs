//! Merkle tree root over transaction ids.
//!
//! Block headers commit to their transaction list through a Merkle root so
//! that verifying miners can detect any tampering with the body without
//! re-hashing payloads individually during the PoW search.

use bfl_crypto::sha256::{sha256, Digest};

/// Computes the Merkle root of a list of leaf digests.
///
/// The empty list hashes to SHA-256 of the empty string, mirroring the
/// convention that an empty block still has a well-defined commitment. An
/// odd leaf at any level is paired with itself (the Bitcoin convention).
pub fn merkle_root(leaves: &[Digest]) -> Digest {
    if leaves.is_empty() {
        return sha256(b"");
    }
    let mut level: Vec<Digest> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let left = pair[0];
            let right = if pair.len() == 2 { pair[1] } else { pair[0] };
            let mut buf = [0u8; 64];
            buf[..32].copy_from_slice(&left);
            buf[32..].copy_from_slice(&right);
            next.push(sha256(&buf));
        }
        level = next;
    }
    level[0]
}

/// Computes a Merkle inclusion proof for the leaf at `index`.
///
/// Returns the sibling path bottom-up, or `None` if `index` is out of range.
pub fn merkle_proof(leaves: &[Digest], index: usize) -> Option<Vec<Digest>> {
    if index >= leaves.len() {
        return None;
    }
    let mut proof = Vec::new();
    let mut level: Vec<Digest> = leaves.to_vec();
    let mut idx = index;
    while level.len() > 1 {
        let sibling = if idx.is_multiple_of(2) {
            *level.get(idx + 1).unwrap_or(&level[idx])
        } else {
            level[idx - 1]
        };
        proof.push(sibling);
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let left = pair[0];
            let right = if pair.len() == 2 { pair[1] } else { pair[0] };
            let mut buf = [0u8; 64];
            buf[..32].copy_from_slice(&left);
            buf[32..].copy_from_slice(&right);
            next.push(sha256(&buf));
        }
        level = next;
        idx /= 2;
    }
    Some(proof)
}

/// Verifies a Merkle inclusion proof produced by [`merkle_proof`].
pub fn verify_proof(leaf: Digest, index: usize, proof: &[Digest], root: Digest) -> bool {
    let mut current = leaf;
    let mut idx = index;
    for sibling in proof {
        let mut buf = [0u8; 64];
        if idx.is_multiple_of(2) {
            buf[..32].copy_from_slice(&current);
            buf[32..].copy_from_slice(sibling);
        } else {
            buf[..32].copy_from_slice(sibling);
            buf[32..].copy_from_slice(&current);
        }
        current = sha256(&buf);
        idx /= 2;
    }
    current == root
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaf(i: u8) -> Digest {
        sha256(&[i])
    }

    #[test]
    fn empty_list_has_stable_root() {
        assert_eq!(merkle_root(&[]), sha256(b""));
    }

    #[test]
    fn single_leaf_root_is_the_leaf() {
        let l = leaf(7);
        assert_eq!(merkle_root(&[l]), l);
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let leaves: Vec<Digest> = (0..5).map(leaf).collect();
        let base = merkle_root(&leaves);
        for i in 0..leaves.len() {
            let mut mutated = leaves.clone();
            mutated[i] = leaf(100 + i as u8);
            assert_ne!(
                merkle_root(&mutated),
                base,
                "leaf {i} change must alter root"
            );
        }
    }

    #[test]
    fn root_depends_on_order() {
        let a: Vec<Digest> = (0..4).map(leaf).collect();
        let mut b = a.clone();
        b.swap(0, 3);
        assert_ne!(merkle_root(&a), merkle_root(&b));
    }

    #[test]
    fn odd_and_even_leaf_counts_produce_roots() {
        for n in 1..=9usize {
            let leaves: Vec<Digest> = (0..n as u8).map(leaf).collect();
            let _ = merkle_root(&leaves);
        }
    }

    #[test]
    fn proof_out_of_range_is_none() {
        let leaves: Vec<Digest> = (0..3).map(leaf).collect();
        assert!(merkle_proof(&leaves, 3).is_none());
        assert!(merkle_proof(&[], 0).is_none());
    }

    #[test]
    fn proofs_verify_and_detect_tampering() {
        let leaves: Vec<Digest> = (0..7).map(leaf).collect();
        let root = merkle_root(&leaves);
        for (i, &l) in leaves.iter().enumerate() {
            let proof = merkle_proof(&leaves, i).unwrap();
            assert!(verify_proof(l, i, &proof, root));
            assert!(!verify_proof(leaf(200), i, &proof, root));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn all_proofs_verify(n in 1usize..24) {
            let leaves: Vec<Digest> = (0..n as u8).map(leaf).collect();
            let root = merkle_root(&leaves);
            for i in 0..n {
                let proof = merkle_proof(&leaves, i).unwrap();
                prop_assert!(verify_proof(leaves[i], i, &proof, root));
            }
        }

        #[test]
        fn root_is_deterministic(n in 0usize..24) {
            let leaves: Vec<Digest> = (0..n as u8).map(leaf).collect();
            prop_assert_eq!(merkle_root(&leaves), merkle_root(&leaves));
        }
    }
}
