//! # bfl-chain
//!
//! Proof-of-work blockchain ledger substrate for the FAIR-BFL reproduction.
//!
//! The paper's Procedure-V ("Block Mining and Consensus", Section 4.5) has
//! every miner race to solve `H(nonce + Block) < Target = Target_1 /
//! difficulty` (Equation 4); the winner packs the round's global gradient
//! plus the reward list into a new block and broadcasts it, and all miners
//! append it after verification. The vanilla-BFL baseline additionally
//! records *every local gradient* on chain, which makes block size, the
//! mempool queue and fork resolution matter — those effects drive Figures
//! 4a, 6a and 6b of the evaluation.
//!
//! Modules:
//!
//! * [`transaction`] — the three transaction kinds BFL ledgers carry
//!   (global gradients, local gradients, rewards) plus size accounting.
//! * [`merkle`] — Merkle root over transaction ids.
//! * [`block`] — block headers, block hashing, genesis construction.
//! * [`pow`] — difficulty/target arithmetic, nonce search (sequential and
//!   multi-threaded), and the analytic expected-hash-count model.
//! * [`mempool`] — a size-limited pending-transaction pool that models the
//!   transaction queuing of vanilla BFL.
//! * [`chain`] — the append-only validated chain with reorg support.
//! * [`miner`] — a miner identity with a hash rate, used both for real
//!   nonce searches and for sampling simulated mining times.
//! * [`fork`] — the fork-probability and fork-resolution-delay model used
//!   by the vanilla-blockchain baseline (Figure 6b).
//! * [`consensus`] — round-synchronized winner selection and longest-chain
//!   resolution.

#![warn(missing_docs)]

pub mod block;
pub mod chain;
pub mod consensus;
pub mod error;
pub mod fork;
pub mod mempool;
pub mod merkle;
pub mod miner;
pub mod pow;
pub mod transaction;

pub use block::{Block, BlockHeader, PowMidstate};
pub use chain::Blockchain;
pub use consensus::{ConsensusOutcome, RoundConsensus};
pub use error::ChainError;
pub use fork::ForkModel;
pub use mempool::Mempool;
pub use miner::{Miner, MiningOutcome};
pub use pow::{Difficulty, PowConfig};
pub use transaction::{Transaction, TransactionKind};
