//! Pending-transaction pool with block-size-limited draining.
//!
//! Vanilla BFL records every local gradient on chain. When the number of
//! clients grows, the per-round transaction volume crosses the block-size
//! limit and transactions queue up across multiple blocks — the
//! "transaction queuing ... regarded as a scalability issue" that makes the
//! blockchain baseline's delay overtake FAIR-BFL in Figure 6a. The
//! [`Mempool`] models exactly that: admission (with optional signature
//! verification against a [`bfl_crypto::KeyStore`]), FIFO ordering, and
//! draining into block-sized batches.

use crate::transaction::{Transaction, TransactionKind};
use bfl_crypto::{BatchVerifier, CryptoError, KeyStore, SignedMessage};
use std::collections::{BTreeSet, VecDeque};

/// A FIFO pool of transactions waiting to be packed into blocks.
///
/// Local-gradient uploads are additionally keyed by `(round, client)`:
/// when the network retries a lost upload *and* the original copy turns
/// out to have been delivered after all (or a faulty link duplicates the
/// send), the second arrival is recognised and ignored instead of
/// double-counting in aggregation.
#[derive(Debug, Clone, Default)]
pub struct Mempool {
    pending: VecDeque<Transaction>,
    /// `(round, client)` keys of the pending local-gradient uploads.
    upload_keys: BTreeSet<(u64, u64)>,
}

/// The `(round, client)` dedup key of a local-gradient upload; `None`
/// for transaction kinds that are never retransmitted.
fn upload_key(tx: &Transaction) -> Option<(u64, u64)> {
    match &tx.kind {
        TransactionKind::LocalGradient {
            round, client_id, ..
        } => Some((*round, *client_id)),
        _ => None,
    }
}

impl Mempool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total size of all pending transactions in bytes.
    pub fn pending_bytes(&self) -> usize {
        self.pending.iter().map(Transaction::size_bytes).sum()
    }

    /// Admits a transaction without verification.
    pub fn submit(&mut self, tx: Transaction) {
        if let Some(key) = upload_key(&tx) {
            self.upload_keys.insert(key);
        }
        self.pending.push_back(tx);
    }

    /// Admits a transaction after verifying its carrier signature against
    /// the registered public key of the claimed signer.
    ///
    /// `envelope` is the signed message that carried `tx` over the network;
    /// the mempool does not interpret its payload, it only checks the
    /// signature (the paper's Figure 2 verification step).
    ///
    /// Returns `Ok(true)` when the transaction was admitted and
    /// `Ok(false)` when it was a retransmit of a pending local-gradient
    /// upload for the same `(round, client)` and was ignored.
    pub fn submit_signed(
        &mut self,
        tx: Transaction,
        envelope: &SignedMessage,
        keys: &KeyStore,
    ) -> Result<bool, CryptoError> {
        keys.verify(envelope)?;
        if let Some(key) = upload_key(&tx) {
            if !self.upload_keys.insert(key) {
                return Ok(false);
            }
        }
        self.pending.push_back(tx);
        Ok(true)
    }

    /// [`Mempool::submit_signed`] with a caller-supplied [`BatchVerifier`],
    /// so an arrival loop draining many envelopes amortises one Montgomery
    /// workspace across all of them. Decision-identical to
    /// [`Mempool::submit_signed`].
    pub fn submit_signed_with(
        &mut self,
        tx: Transaction,
        envelope: &SignedMessage,
        keys: &KeyStore,
        verifier: &mut BatchVerifier,
    ) -> Result<bool, CryptoError> {
        keys.verify_cached(envelope, verifier)?;
        if let Some(key) = upload_key(&tx) {
            if !self.upload_keys.insert(key) {
                return Ok(false);
            }
        }
        self.pending.push_back(tx);
        Ok(true)
    }

    /// Admits a batch of signed transactions, verifying all envelopes as
    /// one [`BatchVerifier::verify_batch`] call before any admission.
    /// Returns one [`Mempool::submit_signed`]-shaped verdict per input, in
    /// input order — semantics identical to submitting the pairs one at a
    /// time (verification cannot observe mempool state, and dedup runs in
    /// input order after the verdicts are in).
    pub fn submit_signed_batch(
        &mut self,
        uploads: Vec<(Transaction, &SignedMessage)>,
        keys: &KeyStore,
        verifier: &mut BatchVerifier,
    ) -> Vec<Result<bool, CryptoError>> {
        let envelopes: Vec<&SignedMessage> = uploads.iter().map(|(_, env)| *env).collect();
        let verdicts = keys.verify_batch(&envelopes, verifier);
        uploads
            .into_iter()
            .zip(verdicts)
            .map(|((tx, _), verdict)| {
                verdict?;
                if let Some(key) = upload_key(&tx) {
                    if !self.upload_keys.insert(key) {
                        return Ok(false);
                    }
                }
                self.pending.push_back(tx);
                Ok(true)
            })
            .collect()
    }

    /// Removes the pending local-gradient upload of `(round, client)`,
    /// returning it when one was pending. Models a miner crash losing
    /// (part of) its mempool.
    pub fn remove_upload(&mut self, round: u64, client: u64) -> Option<Transaction> {
        if !self.upload_keys.remove(&(round, client)) {
            return None;
        }
        let position = self
            .pending
            .iter()
            .position(|tx| upload_key(tx) == Some((round, client)))
            .expect("keyed upload is pending");
        self.pending.remove(position)
    }

    /// Drains the oldest transactions that fit within `max_block_bytes`
    /// (accounting for the block header overhead), preserving FIFO order.
    ///
    /// Always returns at least one transaction if the pool is non-empty,
    /// even if that single transaction exceeds the limit on its own —
    /// otherwise an oversized gradient would wedge the queue forever.
    pub fn drain_block(&mut self, max_block_bytes: usize) -> Vec<Transaction> {
        const HEADER_BYTES: usize = 104;
        let mut batch = Vec::new();
        let mut used = HEADER_BYTES;
        while let Some(tx) = self.pending.front() {
            let tx_size = tx.size_bytes();
            if batch.is_empty() || used + tx_size <= max_block_bytes {
                used += tx_size;
                let tx = self.pending.pop_front().expect("front exists");
                if let Some(key) = upload_key(&tx) {
                    self.upload_keys.remove(&key);
                }
                batch.push(tx);
                if used > max_block_bytes {
                    break;
                }
            } else {
                break;
            }
        }
        batch
    }

    /// Drains every pending transaction in FIFO order, regardless of
    /// block-size limits.
    ///
    /// This is the miner-side drain of FAIR-BFL's flexible-block round:
    /// under Assumption 2 the sealed block carries only the *global*
    /// gradient, so the pending local-gradient uploads are consumed as a
    /// working set when the quota fires rather than packed into blocks.
    pub fn drain_all(&mut self) -> Vec<Transaction> {
        self.upload_keys.clear();
        self.pending.drain(..).collect()
    }

    /// How many blocks of size `max_block_bytes` are needed to clear the
    /// current backlog. Used by the vanilla-BFL delay model.
    pub fn blocks_needed(&self, max_block_bytes: usize) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let mut clone = self.clone();
        let mut blocks = 0;
        while !clone.is_empty() {
            clone.drain_block(max_block_bytes);
            blocks += 1;
        }
        blocks
    }

    /// Discards everything (used when a round is abandoned).
    pub fn clear(&mut self) {
        self.pending.clear();
        self.upload_keys.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_crypto::signature::sign_message;
    use bfl_crypto::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gradient_tx(client: u64, bytes: usize) -> Transaction {
        Transaction::local_gradient(client, 1, vec![0u8; bytes])
    }

    #[test]
    fn submit_and_len() {
        let mut pool = Mempool::new();
        assert!(pool.is_empty());
        pool.submit(gradient_tx(1, 10));
        pool.submit(gradient_tx(2, 10));
        assert_eq!(pool.len(), 2);
        assert!(pool.pending_bytes() > 20);
    }

    #[test]
    fn drain_respects_block_size_and_fifo_order() {
        let mut pool = Mempool::new();
        for client in 0..10u64 {
            pool.submit(gradient_tx(client, 1000));
        }
        // Each tx is ~1096 bytes; a 4 KiB block fits 3 of them.
        let batch = pool.drain_block(4096);
        assert_eq!(batch.len(), 3);
        match &batch[0].kind {
            crate::transaction::TransactionKind::LocalGradient { client_id, .. } => {
                assert_eq!(*client_id, 0)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pool.len(), 7);
    }

    #[test]
    fn oversized_transaction_still_drains_alone() {
        let mut pool = Mempool::new();
        pool.submit(gradient_tx(1, 100_000));
        pool.submit(gradient_tx(2, 10));
        let batch = pool.drain_block(1024);
        assert_eq!(batch.len(), 1);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn blocks_needed_matches_manual_draining() {
        let mut pool = Mempool::new();
        for client in 0..20u64 {
            pool.submit(gradient_tx(client, 1000));
        }
        let needed = pool.blocks_needed(4096);
        let mut count = 0;
        while !pool.is_empty() {
            pool.drain_block(4096);
            count += 1;
        }
        assert_eq!(needed, count);
        assert_eq!(pool.blocks_needed(4096), 0);
    }

    #[test]
    fn drain_all_empties_the_pool_in_fifo_order() {
        let mut pool = Mempool::new();
        for client in 0..5u64 {
            pool.submit(gradient_tx(client, 100_000));
        }
        let drained = pool.drain_all();
        assert!(pool.is_empty());
        assert_eq!(drained.len(), 5);
        let ids: Vec<u64> = drained
            .iter()
            .map(|tx| match &tx.kind {
                crate::transaction::TransactionKind::LocalGradient { client_id, .. } => *client_id,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(pool.drain_all().is_empty());
    }

    #[test]
    fn clear_empties_the_pool() {
        let mut pool = Mempool::new();
        pool.submit(gradient_tx(1, 10));
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn signed_submission_requires_valid_signature() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(42);
        let pairs = store.provision(&mut rng, &[1, 2], 256).unwrap();

        let mut pool = Mempool::new();
        let tx = gradient_tx(1, 16);
        let envelope = sign_message(1, b"serialized gradient", &pairs[&1].private);
        pool.submit_signed(tx.clone(), &envelope, &store).unwrap();
        assert_eq!(pool.len(), 1);

        // Client 2 forging client 1's identity is rejected.
        let forged = sign_message(1, b"poison", &pairs[&2].private);
        let err = pool.submit_signed(tx, &forged, &store).unwrap_err();
        assert_eq!(err, CryptoError::InvalidSignature);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn batch_submission_matches_one_at_a_time() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(45);
        let pairs = store.provision(&mut rng, &[1, 2, 3], 256).unwrap();

        // Valid uploads for clients 1..3, a forged envelope for client 2,
        // a retransmit of client 1, and an unknown signer — the batch and
        // the one-at-a-time pools must agree verdict-for-verdict.
        let good1 = sign_message(1, b"upload", &pairs[&1].private);
        let forged2 = sign_message(2, b"upload", &pairs[&3].private);
        let good3 = sign_message(3, b"upload", &pairs[&3].private);
        let ghost = sign_message(9, b"upload", &pairs[&1].private);
        let uploads = vec![
            (gradient_tx(1, 16), &good1),
            (gradient_tx(2, 16), &forged2),
            (gradient_tx(3, 16), &good3),
            (gradient_tx(1, 16), &good1),
            (gradient_tx(9, 16), &ghost),
        ];

        let mut serial = Mempool::new();
        let mut verifier = BatchVerifier::new();
        let expected: Vec<_> = uploads
            .iter()
            .map(|(tx, env)| serial.submit_signed_with(tx.clone(), env, &store, &mut verifier))
            .collect();

        let mut batched = Mempool::new();
        let got = batched.submit_signed_batch(uploads, &store, &mut verifier);
        assert_eq!(got, expected);
        assert_eq!(got[0], Ok(true));
        assert_eq!(got[1], Err(CryptoError::InvalidSignature));
        assert_eq!(got[3], Ok(false), "retransmit deduplicated");
        assert_eq!(got[4], Err(CryptoError::UnknownSigner(9)));
        assert_eq!(batched.len(), serial.len());
    }

    #[test]
    fn retransmitted_upload_is_deduplicated_by_round_and_client() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(44);
        let pairs = store.provision(&mut rng, &[1, 2], 256).unwrap();

        let mut pool = Mempool::new();
        let tx = gradient_tx(1, 16);
        let envelope = sign_message(1, b"upload r1", &pairs[&1].private);
        assert!(pool.submit_signed(tx.clone(), &envelope, &store).unwrap());
        // The retry + the duplicated link both deliver the same upload
        // again: recognised and ignored, not double-counted.
        assert!(!pool.submit_signed(tx.clone(), &envelope, &store).unwrap());
        assert!(!pool.submit_signed(tx, &envelope, &store).unwrap());
        assert_eq!(pool.len(), 1);

        // A different client or a different round is not a duplicate.
        let other_client = gradient_tx(2, 16);
        let env2 = sign_message(2, b"upload r1", &pairs[&2].private);
        assert!(pool.submit_signed(other_client, &env2, &store).unwrap());
        let later_round = Transaction::local_gradient(1, 2, vec![0u8; 16]);
        assert!(pool.submit_signed(later_round, &envelope, &store).unwrap());
        assert_eq!(pool.len(), 3);

        // Draining frees the keys: a fresh upload for the same round is
        // admissible again (a new block's working set).
        let drained = pool.drain_all();
        assert_eq!(drained.len(), 3);
        let tx = gradient_tx(1, 16);
        assert!(pool.submit_signed(tx, &envelope, &store).unwrap());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn remove_upload_models_a_lost_mempool_entry() {
        let mut pool = Mempool::new();
        pool.submit(gradient_tx(1, 16));
        pool.submit(Transaction::local_gradient(2, 1, vec![0u8; 16]));
        pool.submit(Transaction::reward(9, 1, 2, 100));

        // Unknown key: no-op.
        assert!(pool.remove_upload(1, 7).is_none());
        assert_eq!(pool.len(), 3);

        let removed = pool.remove_upload(1, 2).unwrap();
        match &removed.kind {
            TransactionKind::LocalGradient { client_id, .. } => assert_eq!(*client_id, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pool.len(), 2);
        // Removed means re-admissible.
        pool.submit(Transaction::local_gradient(2, 1, vec![0u8; 16]));
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn unknown_signer_is_rejected() {
        let store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(43);
        let pair = RsaKeyPair::generate(&mut rng, 256).unwrap();
        let mut pool = Mempool::new();
        let envelope = sign_message(7, b"payload", &pair.private);
        let err = pool
            .submit_signed(gradient_tx(7, 4), &envelope, &store)
            .unwrap_err();
        assert_eq!(err, CryptoError::UnknownSigner(7));
    }

    mod corruption_properties {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// One provisioned signer shared across proptest cases (RSA key
        /// generation is the expensive part).
        fn signer() -> &'static (KeyStore, bfl_crypto::RsaKeyPair) {
            static SIGNER: OnceLock<(KeyStore, bfl_crypto::RsaKeyPair)> = OnceLock::new();
            SIGNER.get_or_init(|| {
                let mut store = KeyStore::new();
                let mut rng = StdRng::seed_from_u64(0xC0FFEE);
                let pairs = store.provision(&mut rng, &[1], 256).unwrap();
                let pair = pairs[&1].clone();
                (store, pair)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any single-byte corruption of a signed upload in transit is
            /// rejected by `submit_signed` — the signature check is the
            /// fault detector for corrupt-bytes link faults.
            #[test]
            fn single_byte_corruption_is_rejected(
                payload in proptest::collection::vec(any::<u8>(), 1..64),
                index_seed in any::<usize>(),
                flip in 1u8..=255,
            ) {
                let (store, pair) = signer();
                let mut envelope = sign_message(1, &payload, &pair.private);
                let index = index_seed % envelope.payload.len();
                envelope.payload[index] ^= flip;

                let mut pool = Mempool::new();
                let err = pool
                    .submit_signed(gradient_tx(1, 16), &envelope, store)
                    .unwrap_err();
                prop_assert_eq!(err, CryptoError::InvalidSignature);
                prop_assert!(pool.is_empty());
            }
        }
    }
}
