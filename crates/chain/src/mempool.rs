//! Pending-transaction pool with block-size-limited draining.
//!
//! Vanilla BFL records every local gradient on chain. When the number of
//! clients grows, the per-round transaction volume crosses the block-size
//! limit and transactions queue up across multiple blocks — the
//! "transaction queuing ... regarded as a scalability issue" that makes the
//! blockchain baseline's delay overtake FAIR-BFL in Figure 6a. The
//! [`Mempool`] models exactly that: admission (with optional signature
//! verification against a [`bfl_crypto::KeyStore`]), FIFO ordering, and
//! draining into block-sized batches.

use crate::transaction::Transaction;
use bfl_crypto::{CryptoError, KeyStore, SignedMessage};
use std::collections::VecDeque;

/// A FIFO pool of transactions waiting to be packed into blocks.
#[derive(Debug, Clone, Default)]
pub struct Mempool {
    pending: VecDeque<Transaction>,
}

impl Mempool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total size of all pending transactions in bytes.
    pub fn pending_bytes(&self) -> usize {
        self.pending.iter().map(Transaction::size_bytes).sum()
    }

    /// Admits a transaction without verification.
    pub fn submit(&mut self, tx: Transaction) {
        self.pending.push_back(tx);
    }

    /// Admits a transaction after verifying its carrier signature against
    /// the registered public key of the claimed signer.
    ///
    /// `envelope` is the signed message that carried `tx` over the network;
    /// the mempool does not interpret its payload, it only checks the
    /// signature (the paper's Figure 2 verification step).
    pub fn submit_signed(
        &mut self,
        tx: Transaction,
        envelope: &SignedMessage,
        keys: &KeyStore,
    ) -> Result<(), CryptoError> {
        keys.verify(envelope)?;
        self.pending.push_back(tx);
        Ok(())
    }

    /// Drains the oldest transactions that fit within `max_block_bytes`
    /// (accounting for the block header overhead), preserving FIFO order.
    ///
    /// Always returns at least one transaction if the pool is non-empty,
    /// even if that single transaction exceeds the limit on its own —
    /// otherwise an oversized gradient would wedge the queue forever.
    pub fn drain_block(&mut self, max_block_bytes: usize) -> Vec<Transaction> {
        const HEADER_BYTES: usize = 104;
        let mut batch = Vec::new();
        let mut used = HEADER_BYTES;
        while let Some(tx) = self.pending.front() {
            let tx_size = tx.size_bytes();
            if batch.is_empty() || used + tx_size <= max_block_bytes {
                used += tx_size;
                batch.push(self.pending.pop_front().expect("front exists"));
                if used > max_block_bytes {
                    break;
                }
            } else {
                break;
            }
        }
        batch
    }

    /// Drains every pending transaction in FIFO order, regardless of
    /// block-size limits.
    ///
    /// This is the miner-side drain of FAIR-BFL's flexible-block round:
    /// under Assumption 2 the sealed block carries only the *global*
    /// gradient, so the pending local-gradient uploads are consumed as a
    /// working set when the quota fires rather than packed into blocks.
    pub fn drain_all(&mut self) -> Vec<Transaction> {
        self.pending.drain(..).collect()
    }

    /// How many blocks of size `max_block_bytes` are needed to clear the
    /// current backlog. Used by the vanilla-BFL delay model.
    pub fn blocks_needed(&self, max_block_bytes: usize) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let mut clone = self.clone();
        let mut blocks = 0;
        while !clone.is_empty() {
            clone.drain_block(max_block_bytes);
            blocks += 1;
        }
        blocks
    }

    /// Discards everything (used when a round is abandoned).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_crypto::signature::sign_message;
    use bfl_crypto::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gradient_tx(client: u64, bytes: usize) -> Transaction {
        Transaction::local_gradient(client, 1, vec![0u8; bytes])
    }

    #[test]
    fn submit_and_len() {
        let mut pool = Mempool::new();
        assert!(pool.is_empty());
        pool.submit(gradient_tx(1, 10));
        pool.submit(gradient_tx(2, 10));
        assert_eq!(pool.len(), 2);
        assert!(pool.pending_bytes() > 20);
    }

    #[test]
    fn drain_respects_block_size_and_fifo_order() {
        let mut pool = Mempool::new();
        for client in 0..10u64 {
            pool.submit(gradient_tx(client, 1000));
        }
        // Each tx is ~1096 bytes; a 4 KiB block fits 3 of them.
        let batch = pool.drain_block(4096);
        assert_eq!(batch.len(), 3);
        match &batch[0].kind {
            crate::transaction::TransactionKind::LocalGradient { client_id, .. } => {
                assert_eq!(*client_id, 0)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pool.len(), 7);
    }

    #[test]
    fn oversized_transaction_still_drains_alone() {
        let mut pool = Mempool::new();
        pool.submit(gradient_tx(1, 100_000));
        pool.submit(gradient_tx(2, 10));
        let batch = pool.drain_block(1024);
        assert_eq!(batch.len(), 1);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn blocks_needed_matches_manual_draining() {
        let mut pool = Mempool::new();
        for client in 0..20u64 {
            pool.submit(gradient_tx(client, 1000));
        }
        let needed = pool.blocks_needed(4096);
        let mut count = 0;
        while !pool.is_empty() {
            pool.drain_block(4096);
            count += 1;
        }
        assert_eq!(needed, count);
        assert_eq!(pool.blocks_needed(4096), 0);
    }

    #[test]
    fn drain_all_empties_the_pool_in_fifo_order() {
        let mut pool = Mempool::new();
        for client in 0..5u64 {
            pool.submit(gradient_tx(client, 100_000));
        }
        let drained = pool.drain_all();
        assert!(pool.is_empty());
        assert_eq!(drained.len(), 5);
        let ids: Vec<u64> = drained
            .iter()
            .map(|tx| match &tx.kind {
                crate::transaction::TransactionKind::LocalGradient { client_id, .. } => *client_id,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(pool.drain_all().is_empty());
    }

    #[test]
    fn clear_empties_the_pool() {
        let mut pool = Mempool::new();
        pool.submit(gradient_tx(1, 10));
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn signed_submission_requires_valid_signature() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(42);
        let pairs = store.provision(&mut rng, &[1, 2], 256).unwrap();

        let mut pool = Mempool::new();
        let tx = gradient_tx(1, 16);
        let envelope = sign_message(1, b"serialized gradient", &pairs[&1].private);
        pool.submit_signed(tx.clone(), &envelope, &store).unwrap();
        assert_eq!(pool.len(), 1);

        // Client 2 forging client 1's identity is rejected.
        let forged = sign_message(1, b"poison", &pairs[&2].private);
        let err = pool.submit_signed(tx, &forged, &store).unwrap_err();
        assert_eq!(err, CryptoError::InvalidSignature);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn unknown_signer_is_rejected() {
        let store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(43);
        let pair = RsaKeyPair::generate(&mut rng, 256).unwrap();
        let mut pool = Mempool::new();
        let envelope = sign_message(7, b"payload", &pair.private);
        let err = pool
            .submit_signed(gradient_tx(7, 4), &envelope, &store)
            .unwrap_err();
        assert_eq!(err, CryptoError::UnknownSigner(7));
    }
}
