//! The validated, append-only blockchain.
//!
//! Every miner holds a copy of the chain. Under FAIR-BFL's synchronized
//! design all copies stay identical (one block per communication round, no
//! forks); the vanilla baseline may need to resolve competing tips, which
//! [`Blockchain::resolve_longest`] models with the longest-chain rule.

use crate::block::Block;
use crate::error::ChainError;
use crate::pow::PowConfig;
use crate::transaction::TransactionKind;
use serde::{Deserialize, Serialize};

/// An append-only chain of validated blocks starting at genesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blockchain {
    blocks: Vec<Block>,
    /// Maximum accepted block size in bytes (the paper's "block size is
    /// limited" constraint that causes vanilla-BFL queuing).
    pub max_block_bytes: usize,
    /// Whether appended blocks must carry a valid proof of work.
    pub require_proof: bool,
}

/// Default block-size limit: large enough for one serialized global
/// gradient of the reference model plus a full reward list, small enough
/// that one hundred local gradients do not fit (driving Figure 6a).
pub const DEFAULT_MAX_BLOCK_BYTES: usize = 512 * 1024;

impl Default for Blockchain {
    fn default() -> Self {
        Self::new()
    }
}

impl Blockchain {
    /// Creates a chain containing only the genesis block.
    pub fn new() -> Self {
        Blockchain {
            blocks: vec![Block::genesis()],
            max_block_bytes: DEFAULT_MAX_BLOCK_BYTES,
            require_proof: true,
        }
    }

    /// Creates a chain with a custom block-size limit.
    pub fn with_max_block_bytes(max_block_bytes: usize) -> Self {
        Blockchain {
            blocks: vec![Block::genesis()],
            max_block_bytes,
            require_proof: true,
        }
    }

    /// Number of blocks including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false: a chain always contains at least genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Height of the tip (genesis is height 0).
    pub fn height(&self) -> u64 {
        (self.blocks.len() - 1) as u64
    }

    /// The latest block.
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("chain always holds genesis")
    }

    /// Block at `height`, if it exists.
    pub fn block_at(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// Iterates over all blocks from genesis to tip.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Validates a candidate block against the current tip without appending.
    pub fn validate_candidate(&self, block: &Block) -> Result<(), ChainError> {
        let tip = self.tip();
        if block.header.index != tip.header.index + 1 {
            return Err(ChainError::WrongIndex {
                expected: block.header.index,
                found: tip.header.index + 1,
            });
        }
        if block.header.previous_hash != tip.hash() {
            return Err(ChainError::BrokenLink {
                height: block.header.index,
            });
        }
        if !block.merkle_consistent() {
            return Err(ChainError::MerkleMismatch);
        }
        if block.size_bytes() > self.max_block_bytes {
            return Err(ChainError::BlockTooLarge {
                size: block.size_bytes(),
                limit: self.max_block_bytes,
            });
        }
        if self.require_proof && !block.proof_is_valid() {
            return Err(ChainError::InsufficientWork);
        }
        Ok(())
    }

    /// Validates and appends a block.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        self.validate_candidate(&block)?;
        self.blocks.push(block);
        Ok(())
    }

    /// Appends without validation. Only used by tests and by the fork model
    /// when reconstructing a competing branch that was already validated.
    pub fn force_append(&mut self, block: Block) {
        self.blocks.push(block);
    }

    /// Re-validates the entire chain from genesis.
    pub fn validate_all(&self) -> Result<(), ChainError> {
        for (i, window) in self.blocks.windows(2).enumerate() {
            let (prev, block) = (&window[0], &window[1]);
            if block.header.index != prev.header.index + 1 {
                return Err(ChainError::WrongIndex {
                    expected: block.header.index,
                    found: prev.header.index + 1,
                });
            }
            if block.header.previous_hash != prev.hash() {
                return Err(ChainError::BrokenLink {
                    height: (i + 1) as u64,
                });
            }
            if !block.merkle_consistent() {
                return Err(ChainError::MerkleMismatch);
            }
            if self.require_proof && !block.proof_is_valid() {
                return Err(ChainError::InsufficientWork);
            }
        }
        Ok(())
    }

    /// Longest-chain resolution: adopts `other` if it is strictly longer and
    /// fully valid. Returns true when a reorganisation happened.
    pub fn resolve_longest(&mut self, other: &Blockchain) -> bool {
        if other.len() > self.len() && other.validate_all().is_ok() {
            self.blocks = other.blocks.clone();
            true
        } else {
            false
        }
    }

    /// Tie-breaking resolution for healing a fork whose branches grew to
    /// the *same* length: adopts `other` when it is fully valid, at least
    /// as long, and ends in a different tip. [`resolve_longest`] strictly
    /// prefers length; this is the deterministic "first-seen branch wins"
    /// rule the consensus layer applies to the equal-length remainder, with
    /// the preferred branch always passed as `other`. Returns true when a
    /// reorganisation happened.
    ///
    /// [`resolve_longest`]: Blockchain::resolve_longest
    pub fn resolve_preferred(&mut self, other: &Blockchain) -> bool {
        if other.len() >= self.len()
            && other.tip().hash() != self.tip().hash()
            && other.validate_all().is_ok()
        {
            self.blocks = other.blocks.clone();
            true
        } else {
            false
        }
    }

    /// The blocks of `self` that do not appear in `canonical` (compared by
    /// hash): the orphaned branch left behind after a reorganisation.
    pub fn orphaned_against(&self, canonical: &Blockchain) -> Vec<Block> {
        let canonical_hashes: std::collections::BTreeSet<[u8; 32]> =
            canonical.blocks.iter().map(Block::hash).collect();
        self.blocks
            .iter()
            .filter(|b| !canonical_hashes.contains(&b.hash()))
            .cloned()
            .collect()
    }

    /// The most recent global-gradient payload on the chain, if any,
    /// together with the round it was recorded for. This is what clients
    /// read at the start of Procedure-I ("read global gradient w_r from the
    /// latest block").
    pub fn latest_global_gradient(&self) -> Option<(u64, Vec<u8>)> {
        self.blocks.iter().rev().find_map(|block| {
            block
                .global_gradient_payload()
                .map(|(round, payload)| (round, payload.to_vec()))
        })
    }

    /// Sums the rewards recorded on chain per client.
    pub fn reward_totals(&self) -> std::collections::BTreeMap<u64, u64> {
        let mut totals = std::collections::BTreeMap::new();
        for block in &self.blocks {
            for tx in &block.transactions {
                if let TransactionKind::Reward {
                    client_id,
                    amount_milli,
                    ..
                } = &tx.kind
                {
                    *totals.entry(*client_id).or_insert(0) += amount_milli;
                }
            }
        }
        totals
    }

    /// Counts blocks that record no transactions (the "empty blocks" that
    /// loosely-coupled vanilla BFL can produce).
    pub fn empty_block_count(&self) -> usize {
        self.blocks.iter().skip(1).filter(|b| b.is_empty()).count()
    }

    /// Builds, mines and appends a block containing `transactions` on top of
    /// the current tip. Returns the number of hash attempts spent mining.
    pub fn mine_and_append(
        &mut self,
        transactions: Vec<crate::transaction::Transaction>,
        timestamp_ms: u64,
        config: &PowConfig,
        miner_id: u64,
    ) -> Result<u64, ChainError> {
        let mut candidate = Block::candidate(
            self.tip(),
            transactions,
            timestamp_ms,
            config.difficulty,
            miner_id,
        );
        let attempts = candidate.mine(config);
        self.append(candidate)?;
        Ok(attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;

    fn easy_pow() -> PowConfig {
        PowConfig::new(4)
    }

    #[test]
    fn new_chain_has_only_genesis() {
        let chain = Blockchain::new();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.height(), 0);
        assert!(!chain.is_empty());
        assert!(chain.latest_global_gradient().is_none());
        assert_eq!(chain.empty_block_count(), 0);
        chain.validate_all().unwrap();
    }

    #[test]
    fn mine_and_append_extends_the_chain() {
        let mut chain = Blockchain::new();
        let txs = vec![Transaction::global_gradient(1, 1, vec![7, 8, 9])];
        let attempts = chain.mine_and_append(txs, 1000, &easy_pow(), 1).unwrap();
        assert!(attempts >= 1);
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.latest_global_gradient(), Some((1, vec![7, 8, 9])));
        chain.validate_all().unwrap();
    }

    #[test]
    fn append_rejects_wrong_index() {
        let mut chain = Blockchain::new();
        let mut block = Block::candidate(chain.tip(), vec![], 0, 1, 1);
        block.header.index = 5;
        assert!(matches!(
            chain.append(block),
            Err(ChainError::WrongIndex { .. })
        ));
    }

    #[test]
    fn append_rejects_broken_link() {
        let mut chain = Blockchain::new();
        let mut block = Block::candidate(chain.tip(), vec![], 0, 1, 1);
        block.header.previous_hash = [9u8; 32];
        block.mine(&easy_pow());
        assert!(matches!(
            chain.append(block),
            Err(ChainError::BrokenLink { .. })
        ));
    }

    #[test]
    fn append_rejects_merkle_mismatch() {
        let mut chain = Blockchain::new();
        let mut block = Block::candidate(chain.tip(), vec![], 0, 1, 1);
        block.transactions.push(Transaction::reward(1, 1, 2, 5));
        block.mine(&easy_pow());
        assert_eq!(chain.append(block), Err(ChainError::MerkleMismatch));
    }

    #[test]
    fn append_rejects_oversized_block() {
        let mut chain = Blockchain::with_max_block_bytes(1024);
        let big = vec![Transaction::local_gradient(1, 1, vec![0u8; 4096])];
        let mut block = Block::candidate(chain.tip(), big, 0, 1, 1);
        block.mine(&easy_pow());
        assert!(matches!(
            chain.append(block),
            Err(ChainError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn append_rejects_missing_proof_when_required() {
        let mut chain = Blockchain::new();
        // Use a high difficulty and do not mine: the zero nonce will
        // essentially never satisfy it.
        let block = Block::candidate(chain.tip(), vec![], 0, u64::MAX / 2, 1);
        assert_eq!(chain.append(block), Err(ChainError::InsufficientWork));
    }

    #[test]
    fn proof_not_required_when_disabled() {
        let mut chain = Blockchain::new();
        chain.require_proof = false;
        let block = Block::candidate(chain.tip(), vec![], 0, u64::MAX / 2, 1);
        chain.append(block).unwrap();
        assert_eq!(chain.height(), 1);
    }

    #[test]
    fn reward_totals_accumulate_across_blocks() {
        let mut chain = Blockchain::new();
        chain
            .mine_and_append(
                vec![
                    Transaction::reward(1, 1, 10, 500),
                    Transaction::reward(1, 1, 11, 300),
                ],
                0,
                &easy_pow(),
                1,
            )
            .unwrap();
        chain
            .mine_and_append(vec![Transaction::reward(1, 2, 10, 250)], 0, &easy_pow(), 1)
            .unwrap();
        let totals = chain.reward_totals();
        assert_eq!(totals[&10], 750);
        assert_eq!(totals[&11], 300);
        assert_eq!(totals.len(), 2);
    }

    #[test]
    fn empty_blocks_are_counted() {
        let mut chain = Blockchain::new();
        chain.mine_and_append(vec![], 0, &easy_pow(), 1).unwrap();
        chain
            .mine_and_append(vec![Transaction::reward(1, 1, 1, 1)], 0, &easy_pow(), 1)
            .unwrap();
        assert_eq!(chain.empty_block_count(), 1);
    }

    #[test]
    fn longest_chain_resolution_adopts_longer_valid_chain() {
        let mut a = Blockchain::new();
        let mut b = Blockchain::new();
        a.mine_and_append(vec![], 0, &easy_pow(), 1).unwrap();
        b.mine_and_append(vec![], 0, &easy_pow(), 2).unwrap();
        b.mine_and_append(vec![], 1, &easy_pow(), 2).unwrap();
        assert!(a.resolve_longest(&b));
        assert_eq!(a.height(), 2);
        // Equal or shorter chains are not adopted.
        let c = Blockchain::new();
        assert!(!a.resolve_longest(&c));
        assert_eq!(a.height(), 2);
    }

    #[test]
    fn preferred_resolution_breaks_equal_length_ties() {
        let mut a = Blockchain::new();
        let mut b = Blockchain::new();
        a.mine_and_append(vec![], 0, &easy_pow(), 1).unwrap();
        b.mine_and_append(vec![], 1, &easy_pow(), 2).unwrap();
        assert_ne!(a.tip().hash(), b.tip().hash());

        // Longest-chain cannot resolve an equal-length fork...
        assert!(!a.resolve_longest(&b));
        // ...but the preferred branch wins the tie.
        let preferred = b.clone();
        assert!(a.resolve_preferred(&preferred));
        assert_eq!(a.tip().hash(), b.tip().hash());
        // Re-applying is a no-op (same tip).
        assert!(!a.resolve_preferred(&preferred));
        // A shorter chain is never adopted.
        let genesis_only = Blockchain::new();
        assert!(!a.resolve_preferred(&genesis_only));
        assert_eq!(a.height(), 1);
    }

    #[test]
    fn orphaned_against_lists_the_losing_branch() {
        let mut common = Blockchain::new();
        common.mine_and_append(vec![], 0, &easy_pow(), 1).unwrap();
        let mut winner = common.clone();
        let mut loser = common.clone();
        winner.mine_and_append(vec![], 1, &easy_pow(), 1).unwrap();
        winner.mine_and_append(vec![], 2, &easy_pow(), 1).unwrap();
        loser
            .mine_and_append(vec![Transaction::reward(2, 2, 7, 10)], 3, &easy_pow(), 2)
            .unwrap();

        let orphans = loser.orphaned_against(&winner);
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].hash(), loser.tip().hash());
        // The winning branch has no orphans against itself.
        assert!(winner.orphaned_against(&winner).is_empty());
    }

    #[test]
    fn latest_global_gradient_returns_most_recent() {
        let mut chain = Blockchain::new();
        chain
            .mine_and_append(
                vec![Transaction::global_gradient(1, 1, vec![1])],
                0,
                &easy_pow(),
                1,
            )
            .unwrap();
        chain
            .mine_and_append(
                vec![Transaction::global_gradient(1, 2, vec![2])],
                0,
                &easy_pow(),
                1,
            )
            .unwrap();
        assert_eq!(chain.latest_global_gradient(), Some((2, vec![2])));
    }

    #[test]
    fn block_at_and_iter_are_consistent() {
        let mut chain = Blockchain::new();
        chain.mine_and_append(vec![], 0, &easy_pow(), 1).unwrap();
        assert_eq!(chain.block_at(0).unwrap().header.index, 0);
        assert_eq!(chain.block_at(1).unwrap().header.index, 1);
        assert!(chain.block_at(2).is_none());
        assert_eq!(chain.iter().count(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut chain = Blockchain::new();
        chain
            .mine_and_append(vec![Transaction::reward(1, 1, 5, 42)], 9, &easy_pow(), 3)
            .unwrap();
        let json = serde_json::to_string(&chain).unwrap();
        let back: Blockchain = serde_json::from_str(&json).unwrap();
        assert_eq!(back, chain);
        back.validate_all().unwrap();
    }

    mod fork_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// After an arbitrary valid fork — a shared prefix plus two
            /// divergent branches of arbitrary lengths — longest-chain
            /// resolution (with the preferred-branch tiebreak on equal
            /// lengths) converges both replicas to one tip.
            #[test]
            fn resolution_converges_an_arbitrary_valid_fork(
                prefix_len in 0usize..3,
                a_len in 1usize..4,
                b_len in 1usize..4,
            ) {
                let pow = easy_pow();
                let mut common = Blockchain::new();
                for i in 0..prefix_len {
                    common.mine_and_append(vec![], i as u64, &pow, 1).unwrap();
                }
                let mut a = common.clone();
                let mut b = common;
                // Distinct miner ids + timestamps force distinct branch
                // blocks even at equal heights.
                for i in 0..a_len {
                    a.mine_and_append(vec![], 100 + i as u64, &pow, 1).unwrap();
                }
                for i in 0..b_len {
                    b.mine_and_append(vec![], 200 + i as u64, &pow, 2).unwrap();
                }
                prop_assert_ne!(a.tip().hash(), b.tip().hash());

                // Each side applies the longest-chain rule; the
                // equal-length remainder is broken toward branch A (the
                // deterministic first-seen preference).
                let snapshot_a = a.clone();
                let reorg_a = a.resolve_longest(&b);
                let reorg_b = b.resolve_longest(&snapshot_a);
                if a.tip().hash() != b.tip().hash() {
                    b.resolve_preferred(&a);
                }

                prop_assert_eq!(a.tip().hash(), b.tip().hash());
                prop_assert_eq!(a.height(), b.height());
                prop_assert_eq!(a.height() as usize, prefix_len + a_len.max(b_len));
                a.validate_all().unwrap();
                b.validate_all().unwrap();
                // Exactly one side reorganised on unequal lengths; neither
                // did on ties (the tiebreak handled it).
                if a_len != b_len {
                    prop_assert!(reorg_a ^ reorg_b);
                } else {
                    prop_assert!(!reorg_a && !reorg_b);
                }
            }
        }
    }
}
