//! BFL ledger transactions.
//!
//! Three kinds of payload appear in a BFL ledger:
//!
//! * **Global gradients** — under FAIR-BFL's Assumption 2, a block contains
//!   exactly one of these per communication round.
//! * **Local gradients** — only recorded by the *vanilla* BFL baseline,
//!   which writes every client's update on chain and therefore suffers from
//!   block-size-limited queuing (Section 5.2.3 / Figure 6a).
//! * **Rewards** — the ⟨client, θ_i/Σθ_k · base⟩ entries produced by the
//!   contribution-based incentive mechanism (Algorithm 2) and appended to
//!   the winner's block.
//!
//! Amounts are carried in milli-units of the reward `base` so that the
//! ledger stays integer-only and hash-stable.

use bfl_crypto::sha256::{sha256, Digest};
use serde::{Deserialize, Serialize};

/// The payload variants a BFL transaction can carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TransactionKind {
    /// The aggregated global gradient of a communication round.
    GlobalGradient {
        /// Communication round the gradient belongs to.
        round: u64,
        /// Serialized gradient payload (opaque to the ledger).
        payload: Vec<u8>,
    },
    /// A single client's local gradient (vanilla BFL only).
    LocalGradient {
        /// Communication round the gradient belongs to.
        round: u64,
        /// Uploading client.
        client_id: u64,
        /// Serialized gradient payload (opaque to the ledger).
        payload: Vec<u8>,
    },
    /// A reward issued to a client for its contribution in a round.
    Reward {
        /// Communication round the reward was earned in.
        round: u64,
        /// Rewarded client.
        client_id: u64,
        /// Reward amount in milli-units of the configured base.
        amount_milli: u64,
    },
}

/// A ledger transaction: a payload kind plus the id of its submitter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Entity that submitted the transaction (client or miner id).
    pub submitter: u64,
    /// The payload.
    pub kind: TransactionKind,
}

impl Transaction {
    /// Creates a global-gradient transaction (submitted by the winning miner).
    pub fn global_gradient(miner_id: u64, round: u64, payload: Vec<u8>) -> Self {
        Transaction {
            submitter: miner_id,
            kind: TransactionKind::GlobalGradient { round, payload },
        }
    }

    /// Creates a local-gradient transaction (vanilla BFL).
    pub fn local_gradient(client_id: u64, round: u64, payload: Vec<u8>) -> Self {
        Transaction {
            submitter: client_id,
            kind: TransactionKind::LocalGradient {
                round,
                client_id,
                payload,
            },
        }
    }

    /// Creates a reward transaction.
    pub fn reward(miner_id: u64, round: u64, client_id: u64, amount_milli: u64) -> Self {
        Transaction {
            submitter: miner_id,
            kind: TransactionKind::Reward {
                round,
                client_id,
                amount_milli,
            },
        }
    }

    /// The communication round this transaction belongs to.
    pub fn round(&self) -> u64 {
        match &self.kind {
            TransactionKind::GlobalGradient { round, .. }
            | TransactionKind::LocalGradient { round, .. }
            | TransactionKind::Reward { round, .. } => *round,
        }
    }

    /// Approximate serialized size in bytes, used for block-size accounting.
    ///
    /// The constant overhead models the transaction envelope (ids, round,
    /// signature) so that even payload-free reward transactions consume
    /// block space.
    pub fn size_bytes(&self) -> usize {
        const ENVELOPE_BYTES: usize = 96;
        let payload = match &self.kind {
            TransactionKind::GlobalGradient { payload, .. }
            | TransactionKind::LocalGradient { payload, .. } => payload.len(),
            TransactionKind::Reward { .. } => 16,
        };
        ENVELOPE_BYTES + payload
    }

    /// True for gradient-carrying transactions (global or local).
    pub fn is_gradient(&self) -> bool {
        matches!(
            self.kind,
            TransactionKind::GlobalGradient { .. } | TransactionKind::LocalGradient { .. }
        )
    }

    /// Stable content hash used as the transaction id and Merkle leaf.
    pub fn id(&self) -> Digest {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&self.submitter.to_be_bytes());
        match &self.kind {
            TransactionKind::GlobalGradient { round, payload } => {
                bytes.push(0);
                bytes.extend_from_slice(&round.to_be_bytes());
                bytes.extend_from_slice(payload);
            }
            TransactionKind::LocalGradient {
                round,
                client_id,
                payload,
            } => {
                bytes.push(1);
                bytes.extend_from_slice(&round.to_be_bytes());
                bytes.extend_from_slice(&client_id.to_be_bytes());
                bytes.extend_from_slice(payload);
            }
            TransactionKind::Reward {
                round,
                client_id,
                amount_milli,
            } => {
                bytes.push(2);
                bytes.extend_from_slice(&round.to_be_bytes());
                bytes.extend_from_slice(&client_id.to_be_bytes());
                bytes.extend_from_slice(&amount_milli.to_be_bytes());
            }
        }
        sha256(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let g = Transaction::global_gradient(1, 7, vec![1, 2, 3]);
        assert_eq!(g.round(), 7);
        assert_eq!(g.submitter, 1);
        assert!(g.is_gradient());

        let l = Transaction::local_gradient(5, 3, vec![9]);
        assert_eq!(l.round(), 3);
        assert!(l.is_gradient());
        match &l.kind {
            TransactionKind::LocalGradient { client_id, .. } => assert_eq!(*client_id, 5),
            other => panic!("unexpected kind {other:?}"),
        }

        let r = Transaction::reward(2, 4, 8, 1500);
        assert_eq!(r.round(), 4);
        assert!(!r.is_gradient());
    }

    #[test]
    fn size_accounts_for_payload_and_envelope() {
        let small = Transaction::reward(1, 1, 1, 10);
        let big = Transaction::local_gradient(1, 1, vec![0u8; 10_000]);
        assert!(small.size_bytes() >= 96);
        assert!(big.size_bytes() > 10_000);
        assert!(big.size_bytes() < 10_000 + 200);
    }

    #[test]
    fn ids_are_stable_and_distinguish_content() {
        let a = Transaction::reward(1, 2, 3, 100);
        let b = Transaction::reward(1, 2, 3, 100);
        let c = Transaction::reward(1, 2, 3, 101);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());

        let g = Transaction::global_gradient(1, 2, vec![3]);
        let l = Transaction::local_gradient(1, 2, vec![3]);
        assert_ne!(g.id(), l.id(), "kind tag must participate in the id");
    }

    #[test]
    fn serde_round_trip() {
        let tx = Transaction::local_gradient(11, 22, vec![1, 2, 3, 4]);
        let json = serde_json::to_string(&tx).unwrap();
        let back: Transaction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tx);
        assert_eq!(back.id(), tx.id());
    }
}
