//! Random client selection (Algorithm 1, line 3: select λ·n clients).

use rand::seq::SliceRandom;
use rand::Rng;

/// Uniformly selects `count` distinct client indices out of `total`.
/// `count` is clamped to `[1, total]`.
pub fn select_clients<R: Rng + ?Sized>(total: usize, count: usize, rng: &mut R) -> Vec<usize> {
    assert!(total > 0, "cannot select from zero clients");
    let count = count.clamp(1, total);
    let mut indices: Vec<usize> = (0..total).collect();
    indices.shuffle(rng);
    indices.truncate(count);
    indices.sort_unstable();
    indices
}

/// Drops a `drop_percent` fraction of the selected clients (FedProx's
/// straggler model), keeping at least one.
pub fn drop_stragglers<R: Rng + ?Sized>(
    selected: &[usize],
    drop_percent: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!((0.0..1.0).contains(&drop_percent), "drop_percent in [0,1)");
    if selected.is_empty() || drop_percent == 0.0 {
        return selected.to_vec();
    }
    let keep = ((selected.len() as f64) * (1.0 - drop_percent)).round() as usize;
    let keep = keep.clamp(1, selected.len());
    let mut kept = selected.to_vec();
    kept.shuffle(rng);
    kept.truncate(keep);
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selection_has_requested_size_and_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(1);
        let selected = select_clients(100, 10, &mut rng);
        assert_eq!(selected.len(), 10);
        let mut sorted = selected.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(selected.iter().all(|&c| c < 100));
    }

    #[test]
    fn selection_is_clamped() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(select_clients(5, 100, &mut rng).len(), 5);
        assert_eq!(select_clients(5, 0, &mut rng).len(), 1);
    }

    #[test]
    fn all_clients_eventually_get_selected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = vec![false; 20];
        for _ in 0..200 {
            for c in select_clients(20, 5, &mut rng) {
                seen[c] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn straggler_dropping_keeps_a_subset() {
        let mut rng = StdRng::seed_from_u64(4);
        let selected: Vec<usize> = (0..50).collect();
        let kept = drop_stragglers(&selected, 0.02, &mut rng);
        assert_eq!(kept.len(), 49);
        assert!(kept.iter().all(|c| selected.contains(c)));

        let kept_all = drop_stragglers(&selected, 0.0, &mut rng);
        assert_eq!(kept_all.len(), 50);

        let heavy = drop_stragglers(&selected, 0.99, &mut rng);
        assert!(!heavy.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn selection_invariants(total in 1usize..200, count in 0usize..250, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = select_clients(total, count, &mut rng);
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() <= total);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1])); // sorted, distinct
        }

        #[test]
        fn dropping_invariants(n in 1usize..100, drop in 0.0f64..0.99, seed in any::<u64>()) {
            let selected: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let kept = drop_stragglers(&selected, drop, &mut rng);
            prop_assert!(!kept.is_empty());
            prop_assert!(kept.len() <= n);
            prop_assert!(kept.iter().all(|c| *c < n));
        }
    }
}
