//! Gradient-forging attacks.
//!
//! Table 2 of the paper designates 1-3 of 10 clients per round as malicious
//! nodes "which modify the actual local gradients to skew the global
//! model". The attack kinds here are the standard model-poisoning forgeries
//! from the literature the paper cites: flipping the sign of the honest
//! update, re-scaling it to dominate the average, or replacing it with
//! noise. Each produces an upload whose geometry differs from the honest
//! cluster, which is exactly what Algorithm 2's clustering detects.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A way a malicious client forges its uploaded gradient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Upload `-w` instead of `w` (gradient/sign-flip attack).
    SignFlip,
    /// Upload `factor * w`, inflating the client's influence.
    Scaling {
        /// Multiplicative factor applied to the honest update.
        factor: f64,
    },
    /// Replace the update with independent Gaussian noise of this standard
    /// deviation around zero.
    GaussianNoise {
        /// Standard deviation of the forged coordinates.
        std: f64,
    },
    /// Add Gaussian perturbation of this standard deviation to every
    /// coordinate of the honest update (a stealthier poisoning).
    AdditiveNoise {
        /// Standard deviation of the added perturbation.
        std: f64,
    },
}

impl AttackKind {
    /// The default attack used by the Table 2 experiment.
    pub fn default_poisoning() -> Self {
        AttackKind::SignFlip
    }

    /// Applies the forgery to an honest update, producing the malicious
    /// upload.
    pub fn forge<R: Rng + ?Sized>(&self, honest: &[f64], rng: &mut R) -> Vec<f64> {
        match *self {
            AttackKind::SignFlip => honest.iter().map(|v| -v).collect(),
            AttackKind::Scaling { factor } => honest.iter().map(|v| v * factor).collect(),
            AttackKind::GaussianNoise { std } => {
                (0..honest.len()).map(|_| gaussian(rng) * std).collect()
            }
            AttackKind::AdditiveNoise { std } => {
                honest.iter().map(|v| v + gaussian(rng) * std).collect()
            }
        }
    }
}

/// Standard normal sample via Box-Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_ml::gradient::cosine_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn honest() -> Vec<f64> {
        (0..64).map(|i| (i as f64 * 0.37).sin()).collect()
    }

    #[test]
    fn sign_flip_is_maximally_distant_in_cosine_terms() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = honest();
        let forged = AttackKind::SignFlip.forge(&h, &mut rng);
        assert!((cosine_distance(&h, &forged) - 2.0).abs() < 1e-9);
        assert_eq!(forged.len(), h.len());
    }

    #[test]
    fn scaling_preserves_direction_but_changes_magnitude() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = honest();
        let forged = AttackKind::Scaling { factor: 10.0 }.forge(&h, &mut rng);
        assert!(cosine_distance(&h, &forged) < 1e-9);
        assert!((forged[5] - h[5] * 10.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_noise_replaces_the_update() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = honest();
        let forged = AttackKind::GaussianNoise { std: 1.0 }.forge(&h, &mut rng);
        // The forged vector is essentially uncorrelated with the honest one.
        let d = cosine_distance(&h, &forged);
        assert!(
            d > 0.5,
            "noise forgery should be far from honest (distance {d})"
        );
    }

    #[test]
    fn additive_noise_is_a_perturbation() {
        let mut rng = StdRng::seed_from_u64(4);
        let h = honest();
        let small = AttackKind::AdditiveNoise { std: 0.001 }.forge(&h, &mut rng);
        let large = AttackKind::AdditiveNoise { std: 10.0 }.forge(&h, &mut rng);
        assert!(cosine_distance(&h, &small) < 0.05);
        assert!(cosine_distance(&h, &large) > 0.3);
    }

    #[test]
    fn default_poisoning_is_sign_flip() {
        assert_eq!(AttackKind::default_poisoning(), AttackKind::SignFlip);
    }
}
