//! Server-side aggregation rules used by the FL baselines.
//!
//! FedAvg's canonical rule weights each update by its sample count; the
//! paper's Algorithm 1 line 24 uses the plain ("simple average") variant,
//! with FAIR-BFL's contribution-weighted Equation 1 layered on top in
//! `bfl-core`. Both simple and sample-weighted rules live here so the
//! ablation benches can compare them.

use bfl_ml::gradient::{average, average_refs, weighted_average, GradientVector};

/// Simple average of the uploaded parameter vectors (Algorithm 1 line 24).
pub fn simple_average(updates: &[GradientVector]) -> GradientVector {
    average(updates)
}

/// [`simple_average`] over borrowed slices — the round loop aggregates
/// uploads in place without cloning each parameter vector first.
pub fn simple_average_refs(updates: &[&[f64]]) -> GradientVector {
    average_refs(updates)
}

/// Sample-count-weighted FedAvg aggregation: weights proportional to |D_i|.
pub fn sample_weighted_average(
    updates: &[GradientVector],
    sample_counts: &[usize],
) -> GradientVector {
    assert_eq!(updates.len(), sample_counts.len());
    let weights: Vec<f64> = sample_counts.iter().map(|&c| c as f64).collect();
    weighted_average(updates, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_average_is_unweighted() {
        let updates = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        assert_eq!(simple_average(&updates), vec![1.0, 2.0]);
    }

    #[test]
    fn sample_weighting_favours_larger_shards() {
        let updates = vec![vec![0.0], vec![10.0]];
        let aggregated = sample_weighted_average(&updates, &[1, 9]);
        assert!((aggregated[0] - 9.0).abs() < 1e-12);
        let equal = sample_weighted_average(&updates, &[5, 5]);
        assert!((equal[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = sample_weighted_average(&[vec![1.0]], &[1, 2]);
    }
}
