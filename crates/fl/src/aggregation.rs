//! Server-side aggregation rules used by the FL baselines.
//!
//! FedAvg's canonical rule weights each update by its sample count; the
//! paper's Algorithm 1 line 24 uses the plain ("simple average") variant,
//! with FAIR-BFL's contribution-weighted Equation 1 layered on top in
//! `bfl-core`. Both simple and sample-weighted rules live here so the
//! ablation benches can compare them.

use bfl_ml::gradient::{average, average_refs, weighted_average, GradientVector};

/// Simple average of the uploaded parameter vectors (Algorithm 1 line 24).
pub fn simple_average(updates: &[GradientVector]) -> GradientVector {
    average(updates)
}

/// [`simple_average`] over borrowed slices — the round loop aggregates
/// uploads in place without cloning each parameter vector first.
pub fn simple_average_refs(updates: &[&[f64]]) -> GradientVector {
    average_refs(updates)
}

/// Decays a stale client upload toward the current global parameters.
///
/// In the asynchronous round engine a straggler's upload can arrive
/// `age >= 1` rounds after the round that commissioned it. Including it
/// verbatim would inject a gradient computed against an outdated global
/// model; discarding it wastes the straggler's work. The standard
/// asynchronous-FL compromise blends it toward the model it is late for:
///
/// `decayed = global + decay^age · (params − global)`
///
/// with `decay ∈ (0, 1]`. `age = 0` (or `decay = 1`) returns `params`
/// unchanged; as `age` grows the stale update fades into the current
/// global parameters, bounding how far an arbitrarily late upload can
/// pull the aggregate.
pub fn decay_stale_update(
    global: &[f64],
    params: &[f64],
    decay: f64,
    age: usize,
) -> GradientVector {
    assert_eq!(
        global.len(),
        params.len(),
        "stale upload and global parameters must have the same dimension"
    );
    assert!(
        decay > 0.0 && decay <= 1.0,
        "staleness decay must be in (0, 1], got {decay}"
    );
    let weight = decay.powi(age as i32);
    global
        .iter()
        .zip(params.iter())
        .map(|(&g, &p)| g + weight * (p - g))
        .collect()
}

/// Sample-count-weighted FedAvg aggregation: weights proportional to |D_i|.
pub fn sample_weighted_average(
    updates: &[GradientVector],
    sample_counts: &[usize],
) -> GradientVector {
    assert_eq!(updates.len(), sample_counts.len());
    let weights: Vec<f64> = sample_counts.iter().map(|&c| c as f64).collect();
    weighted_average(updates, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_average_is_unweighted() {
        let updates = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        assert_eq!(simple_average(&updates), vec![1.0, 2.0]);
    }

    #[test]
    fn sample_weighting_favours_larger_shards() {
        let updates = vec![vec![0.0], vec![10.0]];
        let aggregated = sample_weighted_average(&updates, &[1, 9]);
        assert!((aggregated[0] - 9.0).abs() < 1e-12);
        let equal = sample_weighted_average(&updates, &[5, 5]);
        assert!((equal[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = sample_weighted_average(&[vec![1.0]], &[1, 2]);
    }

    #[test]
    fn stale_decay_blends_toward_the_global() {
        let global = [1.0, 2.0];
        let params = [3.0, 0.0];
        // Fresh uploads pass through untouched.
        assert_eq!(decay_stale_update(&global, &params, 0.5, 0), params);
        assert_eq!(decay_stale_update(&global, &params, 1.0, 7), params);
        // One round late at decay 0.5: halfway between global and upload.
        assert_eq!(decay_stale_update(&global, &params, 0.5, 1), vec![2.0, 1.0]);
        // Two rounds late: a quarter of the way.
        assert_eq!(decay_stale_update(&global, &params, 0.5, 2), vec![1.5, 1.5]);
        // Very old uploads collapse onto the global parameters.
        let ancient = decay_stale_update(&global, &params, 0.5, 60);
        assert!((ancient[0] - 1.0).abs() < 1e-12);
        assert!((ancient[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "staleness decay")]
    fn stale_decay_rejects_out_of_range_factors() {
        let _ = decay_stale_update(&[1.0], &[2.0], 0.0, 1);
    }
}
