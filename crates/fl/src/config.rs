//! Top-level federated-learning run configuration.

use bfl_ml::model::ModelKind;
use bfl_ml::optimizer::LocalTrainingConfig;
use serde::{Deserialize, Serialize};

/// How client data is split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionKind {
    /// Uniform random split.
    Iid,
    /// Label-sorted shards (the paper's non-IID default).
    ShardNonIid {
        /// Shards handed to each client.
        shards_per_client: usize,
    },
    /// Dirichlet label skew with concentration α.
    Dirichlet {
        /// Concentration parameter; smaller means more skew.
        alpha: f64,
    },
    /// Implicit IID population: client `i`'s shard is derived on demand
    /// from a pure per-index RNG stream ([`crate::implicit`]) instead of
    /// being materialized for the whole population up front. Shards sample
    /// the training set uniformly *with replacement*, so the population may
    /// vastly exceed the dataset size — this is the partition kind that
    /// unlocks million-client runs.
    ImplicitIid {
        /// Samples drawn (with replacement) for each client's shard.
        samples_per_client: usize,
    },
}

impl Default for PartitionKind {
    fn default() -> Self {
        PartitionKind::ShardNonIid {
            shards_per_client: 2,
        }
    }
}

/// Configuration shared by every learning system in the comparison
/// (defaults follow paper Section 5.1: n = 100, η = 0.01, E = 5, B = 10,
/// non-IID, 100 communication rounds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Number of clients `n`.
    pub clients: usize,
    /// Fraction λ of clients selected per round.
    pub participation_ratio: f64,
    /// Number of communication rounds to run.
    pub rounds: usize,
    /// Which model the clients train.
    pub model: ModelKind,
    /// Local training hyper-parameters (E, B, η, μ).
    pub local: LocalTrainingConfig,
    /// Data partition scheme.
    pub partition: PartitionKind,
    /// Fraction of selected clients dropped as stragglers each round
    /// (FedProx's `drop_percent`; 0 for every other system).
    pub drop_percent: f64,
    /// Seed for every random choice in the run.
    pub seed: u64,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            clients: 100,
            participation_ratio: 0.1,
            rounds: 100,
            model: ModelKind::default_mnist(),
            local: LocalTrainingConfig::default(),
            partition: PartitionKind::default(),
            drop_percent: 0.0,
            seed: 0xBF1_2022,
        }
    }
}

impl FlConfig {
    /// Number of clients selected each round (at least one).
    pub fn selected_per_round(&self) -> usize {
        ((self.clients as f64 * self.participation_ratio).round() as usize).clamp(1, self.clients)
    }

    /// Validates parameter ranges, returning a description of the first
    /// inconsistency found (callers that want a panic can `unwrap`).
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("need at least one client".into());
        }
        if !(self.participation_ratio > 0.0 && self.participation_ratio <= 1.0) {
            return Err("participation ratio must be in (0, 1]".into());
        }
        if self.rounds == 0 {
            return Err("need at least one round".into());
        }
        if !(0.0..1.0).contains(&self.drop_percent) {
            return Err("drop_percent must be in [0, 1)".into());
        }
        if self.local.batch_size == 0 || self.local.epochs == 0 {
            return Err("batch size and local epochs must be positive".into());
        }
        if self.local.learning_rate <= 0.0 {
            return Err("learning rate must be positive".into());
        }
        if let PartitionKind::ImplicitIid { samples_per_client } = self.partition {
            if samples_per_client == 0 {
                return Err("implicit partition needs samples_per_client >= 1".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_5_1() {
        let c = FlConfig::default();
        assert_eq!(c.clients, 100);
        assert_eq!(c.rounds, 100);
        assert_eq!(c.local.epochs, 5);
        assert_eq!(c.local.batch_size, 10);
        assert!((c.local.learning_rate - 0.01).abs() < 1e-12);
        assert_eq!(c.drop_percent, 0.0);
        assert!(matches!(
            c.partition,
            PartitionKind::ShardNonIid {
                shards_per_client: 2
            }
        ));
        c.validate().unwrap();
    }

    #[test]
    fn selected_per_round_is_clamped() {
        let mut c = FlConfig::default();
        assert_eq!(c.selected_per_round(), 10);
        c.participation_ratio = 0.001;
        assert_eq!(c.selected_per_round(), 1);
        c.participation_ratio = 1.0;
        assert_eq!(c.selected_per_round(), 100);
    }

    #[test]
    fn invalid_configurations_are_rejected_with_typed_errors() {
        let cases: Vec<(FlConfig, &str)> = vec![
            (
                FlConfig {
                    clients: 0,
                    ..Default::default()
                },
                "at least one client",
            ),
            (
                FlConfig {
                    participation_ratio: 1.5,
                    ..Default::default()
                },
                "participation ratio",
            ),
            (
                FlConfig {
                    participation_ratio: 0.0,
                    ..Default::default()
                },
                "participation ratio",
            ),
            (
                FlConfig {
                    rounds: 0,
                    ..Default::default()
                },
                "at least one round",
            ),
            (
                FlConfig {
                    drop_percent: 1.0,
                    ..Default::default()
                },
                "drop_percent",
            ),
        ];
        for (config, needle) in cases {
            let err = config.validate().expect_err("configuration is invalid");
            assert!(err.contains(needle), "error `{err}` mentions `{needle}`");
        }

        let mut bad_local = FlConfig::default();
        bad_local.local.epochs = 0;
        assert!(bad_local.validate().unwrap_err().contains("epochs"));
        let mut bad_lr = FlConfig::default();
        bad_lr.local.learning_rate = 0.0;
        assert!(bad_lr.validate().unwrap_err().contains("learning rate"));
    }
}
