//! Federated clients.
//!
//! A client owns a shard of the training data (indices into the shared
//! dataset), runs Procedure-I's local SGD pass starting from the latest
//! global parameters, and returns its updated parameter vector. A
//! compromised client additionally forges the upload with its configured
//! [`AttackKind`].

use crate::attack::AttackKind;
use bfl_ml::model::{AnyModel, Model, ModelKind};
use bfl_ml::optimizer::{train_local_with_scratch, LocalTrainingConfig, LocalTrainingStats};
use bfl_ml::tensor::{Matrix, Scratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One federated client (a "worker" in the paper's terminology).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Client {
    /// Stable identifier, also used as the RSA key identity.
    pub id: u64,
    /// Row indices of the shared training set owned by this client (D_i).
    pub shard: Vec<usize>,
    /// If set, the client is malicious and forges its uploads.
    pub attack: Option<AttackKind>,
}

/// The result of one local update pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalUpdate {
    /// Client that produced the update.
    pub client_id: u64,
    /// The uploaded parameter vector (possibly forged).
    pub params: Vec<f64>,
    /// Whether the upload was forged.
    pub forged: bool,
    /// Training statistics of the honest pass (also present for forged
    /// uploads: the attacker trains honestly, then forges the upload).
    pub stats: LocalTrainingStats,
}

impl Client {
    /// Creates an honest client owning `shard`.
    pub fn honest(id: u64, shard: Vec<usize>) -> Self {
        Client {
            id,
            shard,
            attack: None,
        }
    }

    /// Creates a malicious client owning `shard`.
    pub fn malicious(id: u64, shard: Vec<usize>, attack: AttackKind) -> Self {
        Client {
            id,
            shard,
            attack: Some(attack),
        }
    }

    /// Number of local samples |D_i| (what vanilla BFL would have clients
    /// self-report for rewards).
    pub fn sample_count(&self) -> usize {
        self.shard.len()
    }

    /// True when this client forges its uploads.
    pub fn is_malicious(&self) -> bool {
        self.attack.is_some()
    }

    /// Marks the client as malicious (used by the per-round attacker
    /// designation of the Table 2 experiment).
    pub fn set_attack(&mut self, attack: Option<AttackKind>) {
        self.attack = attack;
    }

    /// Runs Procedure-I: starts from `global_params`, trains for the
    /// configured epochs/batches on the local shard, and returns the upload.
    ///
    /// The per-client RNG is derived from `(round_seed, client id)` so runs
    /// are reproducible regardless of scheduling order; this also allows
    /// clients to be trained in parallel.
    pub fn local_update(
        &self,
        model_kind: ModelKind,
        global_params: &[f64],
        features: &Matrix,
        labels: &[usize],
        config: &LocalTrainingConfig,
        round_seed: u64,
    ) -> LocalUpdate {
        let mut scratch = Scratch::new();
        self.local_update_with_scratch(
            model_kind,
            global_params,
            features,
            labels,
            config,
            round_seed,
            &mut scratch,
        )
    }

    /// [`Client::local_update`] with an externally owned scratch
    /// workspace, so a worker training many clients reuses its buffers
    /// across all of them.
    #[allow(clippy::too_many_arguments)]
    pub fn local_update_with_scratch(
        &self,
        model_kind: ModelKind,
        global_params: &[f64],
        features: &Matrix,
        labels: &[usize],
        config: &LocalTrainingConfig,
        round_seed: u64,
        scratch: &mut Scratch,
    ) -> LocalUpdate {
        self.local_update_as(
            self.attack,
            model_kind,
            global_params,
            features,
            labels,
            config,
            round_seed,
            scratch,
        )
    }

    /// Runs the local pass with an explicit attack designation instead of
    /// the client's own [`Client::attack`] field. The FAIR-BFL round
    /// driver designates per-round attackers this way without cloning the
    /// client population.
    #[allow(clippy::too_many_arguments)]
    pub fn local_update_as(
        &self,
        attack: Option<AttackKind>,
        model_kind: ModelKind,
        global_params: &[f64],
        features: &Matrix,
        labels: &[usize],
        config: &LocalTrainingConfig,
        round_seed: u64,
        scratch: &mut Scratch,
    ) -> LocalUpdate {
        let mut rng =
            StdRng::seed_from_u64(round_seed ^ (self.id.wrapping_mul(0x9E3779B97F4A7C15)));
        let mut model: AnyModel = model_kind.build(&mut rng);
        model.set_params(global_params);
        let stats = train_local_with_scratch(
            &mut model,
            features,
            labels,
            &self.shard,
            config,
            &mut rng,
            scratch,
        );
        let honest_params = model.params();
        match attack {
            None => LocalUpdate {
                client_id: self.id,
                params: honest_params,
                forged: false,
                stats,
            },
            Some(attack) => LocalUpdate {
                client_id: self.id,
                params: attack.forge(&honest_params, &mut rng),
                forged: true,
                stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_data::synth_mnist::{SynthMnist, SynthMnistConfig};
    use bfl_ml::gradient::cosine_distance;

    fn small_data() -> bfl_data::Dataset {
        let gen = SynthMnist::new(SynthMnistConfig {
            train_samples: 100,
            test_samples: 10,
            noise_std: 0.05,
            max_translation: 1.0,
        });
        gen.generate_split(100, &mut StdRng::seed_from_u64(1))
    }

    fn kind() -> ModelKind {
        ModelKind::SoftmaxRegression {
            features: 784,
            classes: 10,
        }
    }

    #[test]
    fn constructors_and_accessors() {
        let honest = Client::honest(3, vec![0, 1, 2]);
        assert_eq!(honest.id, 3);
        assert_eq!(honest.sample_count(), 3);
        assert!(!honest.is_malicious());

        let mut evil = Client::malicious(4, vec![5], AttackKind::SignFlip);
        assert!(evil.is_malicious());
        evil.set_attack(None);
        assert!(!evil.is_malicious());
    }

    #[test]
    fn honest_update_moves_parameters_and_is_deterministic() {
        let data = small_data();
        let kind = kind();
        let global = vec![0.0; kind.num_params()];
        let client = Client::honest(0, (0..50).collect());
        let config = LocalTrainingConfig {
            epochs: 2,
            batch_size: 10,
            learning_rate: 0.05,
            proximal_mu: 0.0,
        };
        let a = client.local_update(kind, &global, &data.features, &data.labels, &config, 7);
        let b = client.local_update(kind, &global, &data.features, &data.labels, &config, 7);
        assert!(!a.forged);
        assert_eq!(a.params, b.params, "same seed must give the same update");
        assert!(a.stats.update_norm > 0.0);
        assert_ne!(a.params, global);

        let different_seed =
            client.local_update(kind, &global, &data.features, &data.labels, &config, 8);
        assert_ne!(a.params, different_seed.params);
    }

    #[test]
    fn malicious_update_is_far_from_honest_one() {
        let data = small_data();
        let kind = kind();
        let global = vec![0.0; kind.num_params()];
        let config = LocalTrainingConfig {
            epochs: 1,
            batch_size: 10,
            learning_rate: 0.05,
            proximal_mu: 0.0,
        };
        let shard: Vec<usize> = (0..50).collect();
        let honest = Client::honest(1, shard.clone());
        let evil = Client::malicious(1, shard, AttackKind::SignFlip);
        let honest_update =
            honest.local_update(kind, &global, &data.features, &data.labels, &config, 9);
        let forged_update =
            evil.local_update(kind, &global, &data.features, &data.labels, &config, 9);
        assert!(forged_update.forged);
        let distance = cosine_distance(&honest_update.params, &forged_update.params);
        assert!(
            distance > 1.9,
            "sign-flip should be nearly opposite (distance {distance})"
        );
    }

    #[test]
    fn different_clients_produce_different_updates() {
        let data = small_data();
        let kind = kind();
        let global = vec![0.0; kind.num_params()];
        let config = LocalTrainingConfig {
            epochs: 1,
            batch_size: 10,
            learning_rate: 0.05,
            proximal_mu: 0.0,
        };
        let a = Client::honest(0, (0..50).collect()).local_update(
            kind,
            &global,
            &data.features,
            &data.labels,
            &config,
            3,
        );
        let b = Client::honest(1, (50..100).collect()).local_update(
            kind,
            &global,
            &data.features,
            &data.labels,
            &config,
            3,
        );
        assert_ne!(a.params, b.params);
    }
}
