//! Per-round run records and the paper's convergence criterion.
//!
//! "We consider the model as converged when the accuracy in change is
//! within 0.5% for 5 consecutive communication rounds" (Section 5.2); the
//! same criterion is applied to every system in the comparison.

use serde::{Deserialize, Serialize};

/// Measurements taken at the end of one communication round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Communication round index (1-based, matching the paper's figures).
    pub round: usize,
    /// Mean verification accuracy across clients at the end of the round.
    pub accuracy: f64,
    /// Mean training loss reported by the participating clients.
    pub train_loss: f64,
    /// Simulated wall-clock duration of this round in seconds.
    pub round_delay_s: f64,
    /// Simulated time elapsed since the start of the run, in seconds.
    pub elapsed_s: f64,
    /// Number of clients whose updates entered the aggregation.
    pub participants: usize,
}

/// The full history of a run plus convergence bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunHistory {
    /// Per-round records in order.
    pub rounds: Vec<RoundRecord>,
}

/// Accuracy-change tolerance of the convergence criterion (0.5 %).
pub const CONVERGENCE_TOLERANCE: f64 = 0.005;
/// Number of consecutive stable rounds required for convergence.
pub const CONVERGENCE_WINDOW: usize = 5;

impl RunHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no rounds have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Accuracy after the last recorded round, or `None` for an empty
    /// history (an empty run has no accuracy — callers that used to rely
    /// on the old `0.0` sentinel should decide explicitly what an empty
    /// run means for them).
    pub fn final_accuracy(&self) -> Option<f64> {
        self.rounds.last().map(|r| r.accuracy)
    }

    /// Mean per-round delay in seconds.
    pub fn mean_round_delay(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.round_delay_s).sum::<f64>() / self.rounds.len() as f64
    }

    /// Mean accuracy over all recorded rounds (the paper's "average
    /// accuracy" summary statistic).
    pub fn mean_accuracy(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.accuracy).sum::<f64>() / self.rounds.len() as f64
    }

    /// Cumulative average delay after each round — the series Figure 4a and
    /// Figure 7a plot against the communication round.
    pub fn cumulative_average_delay(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rounds.len());
        let mut total = 0.0;
        for (i, r) in self.rounds.iter().enumerate() {
            total += r.round_delay_s;
            out.push(total / (i + 1) as f64);
        }
        out
    }

    /// First round (1-based) at which the convergence criterion is met, if
    /// any: accuracy changed by less than 0.5 percentage points for five
    /// consecutive rounds.
    pub fn convergence_round(&self) -> Option<usize> {
        if self.rounds.len() < CONVERGENCE_WINDOW + 1 {
            return None;
        }
        let mut stable = 0usize;
        for w in self.rounds.windows(2) {
            if (w[1].accuracy - w[0].accuracy).abs() < CONVERGENCE_TOLERANCE {
                stable += 1;
                if stable >= CONVERGENCE_WINDOW {
                    return Some(w[1].round);
                }
            } else {
                stable = 0;
            }
        }
        None
    }

    /// Simulated time (seconds) at which convergence was reached, if ever.
    pub fn convergence_time(&self) -> Option<f64> {
        let round = self.convergence_round()?;
        self.rounds
            .iter()
            .find(|r| r.round == round)
            .map(|r| r.elapsed_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, accuracy: f64, delay: f64) -> RoundRecord {
        RoundRecord {
            round,
            accuracy,
            train_loss: 1.0 / round as f64,
            round_delay_s: delay,
            elapsed_s: delay * round as f64,
            participants: 10,
        }
    }

    #[test]
    fn empty_history_defaults() {
        let h = RunHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.final_accuracy(), None);
        assert_eq!(h.mean_round_delay(), 0.0);
        assert_eq!(h.mean_accuracy(), 0.0);
        assert!(h.convergence_round().is_none());
        assert!(h.cumulative_average_delay().is_empty());
    }

    #[test]
    fn summary_statistics() {
        let mut h = RunHistory::new();
        h.push(record(1, 0.5, 2.0));
        h.push(record(2, 0.7, 4.0));
        assert_eq!(h.len(), 2);
        assert!((h.final_accuracy().unwrap() - 0.7).abs() < 1e-12);
        assert!((h.mean_round_delay() - 3.0).abs() < 1e-12);
        assert!((h.mean_accuracy() - 0.6).abs() < 1e-12);
        let cum = h.cumulative_average_delay();
        assert_eq!(cum, vec![2.0, 3.0]);
    }

    #[test]
    fn convergence_requires_five_stable_rounds() {
        let mut h = RunHistory::new();
        // Rapid growth then a plateau from round 6.
        let accuracies = [
            0.3, 0.5, 0.65, 0.75, 0.82, 0.90, 0.902, 0.903, 0.901, 0.902, 0.904,
        ];
        for (i, &a) in accuracies.iter().enumerate() {
            h.push(record(i + 1, a, 1.0));
        }
        // Stable pairs start at (6,7); the fifth stable pair ends at round 11.
        assert_eq!(h.convergence_round(), Some(11));
        assert!(h.convergence_time().is_some());
    }

    #[test]
    fn no_convergence_when_accuracy_keeps_moving() {
        let mut h = RunHistory::new();
        for round in 1..=20 {
            h.push(record(round, 0.03 * round as f64, 1.0));
        }
        assert!(h.convergence_round().is_none());
        assert!(h.convergence_time().is_none());
    }

    #[test]
    fn serde_round_trip() {
        let mut h = RunHistory::new();
        h.push(record(1, 0.4, 3.0));
        let json = serde_json::to_string(&h).unwrap();
        let back: RunHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
