//! Pure per-index client derivation for implicit populations.
//!
//! [`PartitionKind::ImplicitIid`](crate::config::PartitionKind) populations
//! are never materialized as a `Vec<Client>`. Instead, client `i`'s shard is
//! a *pure function* of `(seed, i)`: it is drawn from a dedicated RNG stream
//! seeded with `(seed ^ SHARD_STREAM) ^ mix(i)`, where `mix` is the usual
//! golden-ratio multiply used by every per-entity stream in the workspace.
//! Deriving the same index twice — on different machines, in different
//! rounds, or after a cache eviction — always yields byte-identical shards.
//!
//! Two properties make lazy provisioning safe:
//!
//! 1. **Stream isolation.** Shard derivation never touches the learning
//!    stream (`FlConfig.seed` via the engine's round RNG), so a run that
//!    materializes clients eagerly and one that derives them on demand
//!    observe *identical* learning-stream states — results are bit-for-bit
//!    equal.
//! 2. **Statelessness.** The derivation draws a fixed number of values per
//!    index and shares nothing across indices, so any subset of the
//!    population can be provisioned in any order.

use crate::client::Client;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream constant separating shard derivation from the learning
/// (`seed`), key (`seed ^ 0x5EED_0F4B`) and fault (`seed ^ 0xFA17_5EED`)
/// streams.
pub const SHARD_STREAM: u64 = 0x5AAD_D157;

/// Per-index stream mixer shared by every deterministic per-entity stream
/// in the workspace (round seeds, per-client training RNGs, key streams).
#[inline]
pub fn mix_index(index: u64) -> u64 {
    index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Derives client `index`'s shard: `samples_per_client` training-set rows
/// drawn uniformly with replacement from `0..train_len`.
///
/// Pure in `(seed, index)`; panics if the training set is empty or the
/// shard size is zero.
pub fn implicit_shard(
    seed: u64,
    index: u64,
    samples_per_client: usize,
    train_len: usize,
) -> Vec<usize> {
    assert!(
        train_len > 0,
        "implicit shard needs a non-empty training set"
    );
    assert!(samples_per_client > 0, "implicit shard must be non-empty");
    let mut rng = StdRng::seed_from_u64((seed ^ SHARD_STREAM) ^ mix_index(index));
    (0..samples_per_client)
        .map(|_| rng.gen_range(0..train_len))
        .collect()
}

/// Materializes client `index` of an implicit population (honest; the
/// engine designates attackers per round, exactly as for eager clients).
pub fn implicit_client(
    seed: u64,
    index: u64,
    samples_per_client: usize,
    train_len: usize,
) -> Client {
    Client::honest(
        index,
        implicit_shard(seed, index, samples_per_client, train_len),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure_and_index_dependent() {
        let a = implicit_shard(7, 3, 16, 100);
        let b = implicit_shard(7, 3, 16, 100);
        assert_eq!(a, b, "same (seed, index) derives the same shard");
        assert_ne!(a, implicit_shard(7, 4, 16, 100), "indices decorrelate");
        assert_ne!(a, implicit_shard(8, 3, 16, 100), "seeds decorrelate");
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|&s| s < 100));
    }

    #[test]
    fn client_carries_index_as_id() {
        let c = implicit_client(1, 42, 4, 10);
        assert_eq!(c.id, 42);
        assert_eq!(c.sample_count(), 4);
        assert!(c.attack.is_none());
    }

    #[test]
    fn population_can_exceed_dataset() {
        // A million-client population over a 50-row dataset is fine:
        // shards sample with replacement.
        let c = implicit_client(9, 999_999, 8, 50);
        assert!(c.shard.iter().all(|&s| s < 50));
    }

    #[test]
    #[should_panic(expected = "non-empty training set")]
    fn empty_dataset_is_rejected() {
        implicit_shard(0, 0, 4, 0);
    }
}
