//! # bfl-fl
//!
//! Federated-learning baselines and client machinery.
//!
//! FAIR-BFL is evaluated against three baselines (paper Section 5.1): a
//! pure blockchain (no learning), FedAvg (McMahan et al. 2017) and FedProx
//! (Li et al. 2020). This crate implements the learning-side pieces those
//! baselines and FAIR-BFL itself share:
//!
//! * [`client`] — a federated client owning a shard of the training data,
//!   able to run Procedure-I's local SGD pass and, if compromised, to forge
//!   its upload ([`attack`]).
//! * [`selection`] — the random λ·n client selection of Algorithm 1 line 3.
//! * [`aggregation`] — FedAvg-style simple and sample-weighted averaging
//!   (FAIR-BFL's contribution-weighted rule lives in `bfl-core`).
//! * [`trainer`] — round-driven FedAvg / FedProx training loops producing
//!   accuracy histories with the paper's convergence criterion
//!   (accuracy change < 0.5 % for 5 consecutive rounds).
//! * [`history`] — per-round records and convergence detection shared by
//!   every system in the comparison.

#![warn(missing_docs)]

pub mod aggregation;
pub mod attack;
pub mod client;
pub mod config;
pub mod history;
pub mod implicit;
pub mod selection;
pub mod trainer;

pub use attack::AttackKind;
pub use client::Client;
pub use config::FlConfig;
pub use history::{RoundRecord, RunHistory};
pub use trainer::{FlAlgorithm, FlTrainer};
