//! FedAvg and FedProx training loops.
//!
//! These are the learning-only baselines of the comparison: clients train
//! locally (in parallel, one fork/join task per selected client, each
//! worker reusing one scratch workspace across its chunk of clients), the
//! server averages the uploads, and the global model is evaluated on the
//! held-out test set after every communication round. Delay modelling is
//! *not* done here — the delay decomposition T(n, m) belongs to the
//! coupled system and lives in `bfl-core::delay_model`, which wraps these
//! same primitives so that every system in Figure 4/6/7 is timed with one
//! consistent model.

use crate::aggregation::simple_average_refs;
use crate::client::{Client, LocalUpdate};
use crate::config::{FlConfig, PartitionKind};
use crate::history::{RoundRecord, RunHistory};
use crate::selection::{drop_stragglers, select_clients};
use bfl_data::partition::{dirichlet_partition, iid_partition, shard_non_iid_partition};
use bfl_data::Dataset;
use bfl_ml::metrics::accuracy;
use bfl_ml::model::{AnyModel, Model};
use bfl_ml::optimizer::LocalTrainingConfig;
use bfl_ml::par;
use bfl_ml::tensor::Scratch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which baseline algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlAlgorithm {
    /// FedAvg (McMahan et al., 2017): plain local SGD + averaging.
    FedAvg,
    /// FedProx (Li et al., 2020): local objective augmented with
    /// `μ/2 ‖w − w_global‖²`, plus optional straggler dropping via
    /// [`FlConfig::drop_percent`].
    FedProx {
        /// Proximal coefficient μ.
        mu: f64,
    },
}

/// The outcome of a federated training run.
#[derive(Debug, Clone)]
pub struct FlRun {
    /// Per-round accuracy/loss records.
    pub history: RunHistory,
    /// Final global parameter vector.
    pub final_params: Vec<f64>,
    /// The client population used (including shard assignments).
    pub clients: Vec<Client>,
}

/// Round-driven federated trainer.
#[derive(Debug, Clone)]
pub struct FlTrainer {
    /// Run configuration (paper Section 5.1 defaults).
    pub config: FlConfig,
    /// Baseline algorithm.
    pub algorithm: FlAlgorithm,
}

impl FlTrainer {
    /// Creates a trainer.
    pub fn new(config: FlConfig, algorithm: FlAlgorithm) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FL configuration: {e}"));
        FlTrainer { config, algorithm }
    }

    /// Effective local-training configuration (injects FedProx's μ).
    pub fn local_config(&self) -> LocalTrainingConfig {
        let mut local = self.config.local;
        if let FlAlgorithm::FedProx { mu } = self.algorithm {
            local.proximal_mu = mu;
        }
        local
    }

    /// Partitions the training data and builds the (honest) client population.
    pub fn build_clients(&self, train: &Dataset, rng: &mut StdRng) -> Vec<Client> {
        let partition = match self.config.partition {
            PartitionKind::Iid => iid_partition(train.len(), self.config.clients, rng),
            PartitionKind::ShardNonIid { shards_per_client } => {
                shard_non_iid_partition(&train.labels, self.config.clients, shards_per_client, rng)
            }
            PartitionKind::Dirichlet { alpha } => {
                dirichlet_partition(&train.labels, self.config.clients, alpha, rng)
            }
            // Derived per index from a dedicated stream — consumes zero
            // draws from `rng`, so eager and lazy provisioning leave the
            // learning stream in identical states.
            PartitionKind::ImplicitIid { samples_per_client } => {
                return (0..self.config.clients)
                    .map(|i| {
                        crate::implicit::implicit_client(
                            self.config.seed,
                            i as u64,
                            samples_per_client,
                            train.len(),
                        )
                    })
                    .collect();
            }
        };
        partition
            .into_iter()
            .enumerate()
            .map(|(id, shard)| Client::honest(id as u64, shard))
            .collect()
    }

    /// Runs one communication round over an explicit set of participating
    /// clients, returning their uploads (computed in parallel).
    pub fn run_round(
        &self,
        clients: &[Client],
        participants: &[usize],
        global_params: &[f64],
        train: &Dataset,
        round_seed: u64,
    ) -> Vec<LocalUpdate> {
        let local = self.local_config();
        par::par_map_with(participants, 1, Scratch::new, |scratch, _, &idx| {
            clients[idx].local_update_with_scratch(
                self.config.model,
                global_params,
                &train.features,
                &train.labels,
                &local,
                round_seed,
                scratch,
            )
        })
    }

    /// Runs the full multi-round training loop.
    pub fn run(&self, train: &Dataset, test: &Dataset) -> FlRun {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let clients = self.build_clients(train, &mut rng);

        let mut global_model: AnyModel = self.config.model.build(&mut rng);
        let mut global_params = global_model.params();
        let mut history = RunHistory::new();

        for round in 1..=self.config.rounds {
            let selected = select_clients(
                self.config.clients,
                self.config.selected_per_round(),
                &mut rng,
            );
            let participants = drop_stragglers(&selected, self.config.drop_percent, &mut rng);
            let round_seed = self.config.seed ^ (round as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
            let updates =
                self.run_round(&clients, &participants, &global_params, train, round_seed);

            let uploads: Vec<&[f64]> = updates.iter().map(|u| u.params.as_slice()).collect();
            global_params = simple_average_refs(&uploads);
            global_model.set_params(&global_params);

            let test_accuracy = accuracy(&global_model, &test.features, &test.labels, None);
            let train_loss = updates
                .iter()
                .map(|u| u.stats.final_epoch_loss)
                .sum::<f64>()
                / updates.len().max(1) as f64;
            history.push(RoundRecord {
                round,
                accuracy: test_accuracy,
                train_loss,
                round_delay_s: 0.0,
                elapsed_s: 0.0,
                participants: participants.len(),
            });
        }

        FlRun {
            history,
            final_params: global_params,
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_data::synth_mnist::{SynthMnist, SynthMnistConfig};
    use bfl_ml::model::ModelKind;

    fn tiny_config(rounds: usize) -> FlConfig {
        FlConfig {
            clients: 10,
            participation_ratio: 0.5,
            rounds,
            model: ModelKind::SoftmaxRegression {
                features: 784,
                classes: 10,
            },
            local: LocalTrainingConfig {
                epochs: 1,
                batch_size: 10,
                learning_rate: 0.05,
                proximal_mu: 0.0,
            },
            partition: PartitionKind::Iid,
            drop_percent: 0.0,
            seed: 42,
        }
    }

    fn tiny_data() -> (Dataset, Dataset) {
        let gen = SynthMnist::new(SynthMnistConfig {
            train_samples: 300,
            test_samples: 100,
            noise_std: 0.05,
            max_translation: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(7);
        gen.generate(&mut rng)
    }

    #[test]
    fn build_clients_partitions_all_samples() {
        let (train, _) = tiny_data();
        let trainer = FlTrainer::new(tiny_config(1), FlAlgorithm::FedAvg);
        let mut rng = StdRng::seed_from_u64(1);
        let clients = trainer.build_clients(&train, &mut rng);
        assert_eq!(clients.len(), 10);
        let total: usize = clients.iter().map(Client::sample_count).sum();
        assert_eq!(total, train.len());
        assert!(clients.iter().all(|c| !c.is_malicious()));
    }

    #[test]
    fn fedavg_improves_accuracy_over_rounds() {
        let (train, test) = tiny_data();
        let trainer = FlTrainer::new(tiny_config(8), FlAlgorithm::FedAvg);
        let run = trainer.run(&train, &test);
        assert_eq!(run.history.len(), 8);
        let first = run.history.rounds.first().unwrap().accuracy;
        let last = run.history.final_accuracy().unwrap();
        assert!(
            last > first && last > 0.6,
            "accuracy should improve: round1 {first} -> round8 {last}"
        );
        assert_eq!(run.final_params.len(), 7850);
    }

    #[test]
    fn fedprox_uses_proximal_mu_and_drop_percent() {
        let (train, test) = tiny_data();
        let mut config = tiny_config(3);
        config.drop_percent = 0.2;
        let trainer = FlTrainer::new(config, FlAlgorithm::FedProx { mu: 0.1 });
        assert!((trainer.local_config().proximal_mu - 0.1).abs() < 1e-12);
        let run = trainer.run(&train, &test);
        assert_eq!(run.history.len(), 3);
        // Straggler dropping keeps participation below the full selection.
        let selected = trainer.config.selected_per_round();
        assert!(run
            .history
            .rounds
            .iter()
            .all(|r| r.participants >= 1 && r.participants <= selected));
        assert!(run.history.rounds.iter().any(|r| r.participants < selected));
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let (train, test) = tiny_data();
        let trainer = FlTrainer::new(tiny_config(3), FlAlgorithm::FedAvg);
        let a = trainer.run(&train, &test);
        let b = trainer.run(&train, &test);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn fedavg_and_fedprox_produce_different_trajectories() {
        let (train, test) = tiny_data();
        let fedavg = FlTrainer::new(tiny_config(3), FlAlgorithm::FedAvg).run(&train, &test);
        let fedprox =
            FlTrainer::new(tiny_config(3), FlAlgorithm::FedProx { mu: 1.0 }).run(&train, &test);
        assert_ne!(fedavg.final_params, fedprox.final_params);
    }
}
