//! Equivalence of the batched GEMM engine against the retained
//! per-sample reference implementations: same losses, same gradients,
//! same predictions, on randomized models and data.

use bfl_ml::model::{AnyModel, Model, ModelKind};
use bfl_ml::tensor::{Matrix, Scratch};
use bfl_ml::{engine, metrics};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOLERANCE: f64 = 1e-9;

fn random_dataset(
    rng: &mut StdRng,
    rows: usize,
    features: usize,
    classes: usize,
) -> (Matrix, Vec<usize>) {
    let data: Vec<f64> = (0..rows * features)
        .map(|_| rng.gen_range(-2.0..2.0))
        .collect();
    let labels: Vec<usize> = (0..rows).map(|_| rng.gen_range(0..classes)).collect();
    (Matrix::from_vec(rows, features, data), labels)
}

fn model_kinds() -> Vec<ModelKind> {
    vec![
        ModelKind::SoftmaxRegression {
            features: 17,
            classes: 5,
        },
        ModelKind::Mlp {
            features: 17,
            hidden: 9,
            classes: 5,
        },
    ]
}

#[test]
fn batched_loss_and_grad_matches_reference_on_random_inputs() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for kind in model_kinds() {
        for trial in 0..10 {
            let model: AnyModel = kind.build(&mut rng);
            let rows_total = 3 + trial * 7;
            let (features, labels) = random_dataset(&mut rng, rows_total, 17, 5);

            // Batch sizes straddling 1, partial and full batches.
            for batch_len in [1usize, 2, rows_total / 2 + 1, rows_total] {
                let batch: Vec<usize> = (0..batch_len.min(rows_total)).collect();
                let (reference_loss, reference_grad) =
                    model.loss_and_grad_reference(&features, &labels, &batch);
                let mut scratch = Scratch::new();
                let mut batched_grad = Vec::new();
                let batched_loss = model.loss_and_grad_batched(
                    &features,
                    &labels,
                    &batch,
                    &mut batched_grad,
                    &mut scratch,
                );
                assert!(
                    (batched_loss - reference_loss).abs() < TOLERANCE,
                    "{kind:?} loss {batched_loss} vs {reference_loss}"
                );
                assert_eq!(batched_grad.len(), reference_grad.len());
                for (i, (b, r)) in batched_grad.iter().zip(reference_grad.iter()).enumerate() {
                    assert!(
                        (b - r).abs() < TOLERANCE,
                        "{kind:?} grad[{i}]: batched {b} vs reference {r}"
                    );
                }
            }
        }
    }
}

#[test]
fn scratch_reuse_across_batches_and_models_does_not_leak_state() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let mut scratch = Scratch::new();
    let mut grad = Vec::new();
    // One shared workspace across alternating models and batch shapes must
    // produce the same results as fresh workspaces every time.
    for kind in model_kinds() {
        let model: AnyModel = kind.build(&mut rng);
        let (features, labels) = random_dataset(&mut rng, 24, 17, 5);
        for batch_len in [24usize, 3, 11, 1, 24] {
            let batch: Vec<usize> = (0..batch_len).collect();
            let shared_loss =
                model.loss_and_grad_batched(&features, &labels, &batch, &mut grad, &mut scratch);
            let shared_grad = grad.clone();
            let mut fresh_scratch = Scratch::new();
            let mut fresh_grad = Vec::new();
            let fresh_loss = model.loss_and_grad_batched(
                &features,
                &labels,
                &batch,
                &mut fresh_grad,
                &mut fresh_scratch,
            );
            assert_eq!(shared_loss.to_bits(), fresh_loss.to_bits());
            assert_eq!(shared_grad, fresh_grad);
        }
    }
}

#[test]
fn batched_accuracy_matches_reference_predictions() {
    let _guard = engine::mode_lock();
    let mut rng = StdRng::seed_from_u64(0xACC);
    for kind in model_kinds() {
        let model: AnyModel = kind.build(&mut rng);
        let (features, labels) = random_dataset(&mut rng, 700, 17, 5);
        let rows: Vec<usize> = (0..features.rows).collect();
        let batched = metrics::accuracy(&model, &features, &labels, None);
        let reference = metrics::accuracy_reference(&model, &features, &labels, &rows);
        assert_eq!(batched, reference, "{kind:?}");

        // Subset selection takes the same path.
        let subset: Vec<usize> = (0..features.rows).step_by(3).collect();
        let batched = metrics::accuracy(&model, &features, &labels, Some(&subset));
        let reference = metrics::accuracy_reference(&model, &features, &labels, &subset);
        assert_eq!(batched, reference, "{kind:?} subset");
    }
}

#[test]
fn logits_batch_matches_per_row_logits() {
    // The batched kernels use fused multiply-add and lane-striped
    // reductions, so logits may differ from the per-row dot products in
    // the last bits — but no more than that.
    let mut rng = StdRng::seed_from_u64(0x1061);
    for kind in model_kinds() {
        let model: AnyModel = kind.build(&mut rng);
        let (features, _) = random_dataset(&mut rng, 33, 17, 5);
        let rows: Vec<usize> = (0..features.rows).collect();
        let mut scratch = Scratch::new();
        features.select_rows_into(&rows, &mut scratch.x);
        model.logits_batch(&mut scratch);
        for &r in &rows {
            let reference = model.logits(features.row(r));
            let batched = scratch.z.row(r);
            for (b, x) in batched.iter().zip(reference.iter()) {
                assert!(
                    (b - x).abs() <= 1e-12 * x.abs().max(1.0),
                    "{kind:?} row {r}: {b} vs {x}"
                );
            }
        }
    }
}

#[test]
fn reference_mode_switch_routes_loss_and_grad() {
    let _guard = engine::mode_lock();
    let mut rng = StdRng::seed_from_u64(0x5117);
    let kind = ModelKind::SoftmaxRegression {
        features: 8,
        classes: 3,
    };
    let model: AnyModel = kind.build(&mut rng);
    let (features, labels) = random_dataset(&mut rng, 12, 8, 3);
    let rows: Vec<usize> = (0..12).collect();

    let batched = model.loss_and_grad(&features, &labels, &rows);
    let reference = engine::with_reference_mode(|| model.loss_and_grad(&features, &labels, &rows));
    assert!((batched.0 - reference.0).abs() < TOLERANCE);
    for (b, r) in batched.1.iter().zip(reference.1.iter()) {
        assert!((b - r).abs() < TOLERANCE);
    }
}
