//! SIMD == scalar, bit-for-bit, under proptest: every dispatched kernel
//! of the AVX2+FMA tier must reproduce the frozen scalar accumulation
//! order exactly — `to_bits()` equality, not an epsilon — across
//! arbitrary shapes (empty operands, sub-`LANES` remainders, stripe
//! tails, both `gemm_nt` cache regimes) and adversarial values (signed
//! zeros, subnormals, magnitudes that stress rounding).
//!
//! The tier is pinned per comparison with [`simd::set_enabled`], which
//! flips a process-global atomic; [`tier_lock`] serializes every
//! comparison in this binary so concurrently running tests never observe
//! each other's tier. On hosts without AVX2+FMA, forcing the vector tier
//! is a no-op and each comparison degenerates to scalar == scalar —
//! vacuous but harmless (CI's `BFL_SIMD=off` leg covers the scalar tier
//! explicitly either way).

use std::sync::{Mutex, MutexGuard};

use bfl_ml::model::{AnyModel, Model, ModelKind};
use bfl_ml::tensor::{self, Matrix, Scratch};
use bfl_ml::{metrics, simd};
use proptest::prelude::*;

/// Serializes tier flips across this binary's concurrently running
/// tests. An assertion failure inside the critical section poisons the
/// mutex; later tests still need the lock, so poisoning is ignored.
fn tier_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `compute` once per tier under the lock and asserts the outputs
/// are bit-identical. `compute` must be deterministic and must not
/// itself flip the tier.
fn assert_tiers_bit_identical(label: &str, mut compute: impl FnMut() -> Vec<f64>) {
    let _guard = tier_lock();
    simd::set_enabled(false);
    let scalar = compute();
    simd::set_enabled(true);
    let vector = compute();
    simd::reset();
    assert_eq!(scalar.len(), vector.len(), "{label}: output length differs");
    for (i, (s, v)) in scalar.iter().zip(vector.iter()).enumerate() {
        assert!(
            s.to_bits() == v.to_bits(),
            "{label}: element {i} differs — scalar {s:?} ({:#018x}) vs simd {v:?} ({:#018x})",
            s.to_bits(),
            v.to_bits(),
        );
    }
}

/// Element values that stress bit-identity: ordinary magnitudes mixed
/// with exact zeros of both signs, subnormals, and values far apart in
/// exponent (where a re-associated sum would round differently). A
/// hand-rolled mixture because the vendored proptest shim has no
/// `prop_oneof!`.
#[derive(Clone, Copy)]
struct AdversarialF64;

impl Strategy for AdversarialF64 {
    type Value = f64;
    fn sample(&self, rng: &mut proptest::test_runner::TestRng) -> f64 {
        match rng.below(14) {
            0 => 0.0,
            1 => -0.0,
            2 => 5e-324, // smallest positive subnormal
            3 => -5e-324,
            4 | 5 => Strategy::sample(&(-1e-12..1e-12f64), rng),
            6 => Strategy::sample(&(-1e12..1e12f64), rng),
            _ => Strategy::sample(&(-100.0..100.0f64), rng),
        }
    }
}

fn element() -> AdversarialF64 {
    AdversarialF64
}

fn buffer(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(AdversarialF64, len..len + 1)
}

proptest! {
    // Shapes dominate the search space more than values do; 64 cases per
    // property keeps the whole suite inside a few seconds while still
    // visiting empty, remainder, and multi-stripe sizes every run.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One dot product of arbitrary length (`gemm_nt` with a 1x1 output
    /// is exactly one `dot_lanes` call): covers the empty product, the
    /// sub-`LANES` scalar remainder, the `LANES` tail, and multiple
    /// 32-wide stripes.
    #[test]
    fn dot_lanes_matches_scalar_bits(
        k in 0usize..200,
        seed_a in buffer(200),
        seed_b in buffer(200),
    ) {
        let a = seed_a[..k].to_vec();
        let b = seed_b[..k].to_vec();
        assert_tiers_bit_identical("dot", || {
            let mut c = vec![0.0f64; 1];
            tensor::gemm_nt(&a, &b, &mut c, 1, k, 1);
            c
        });
    }

    /// `gemm_nt` in the large-row regime (per-element `dot_lanes`,
    /// `k <= 2 * NT_K_BLOCK` keeps the small-path guard false).
    #[test]
    fn gemm_nt_large_regime_matches_scalar_bits(
        m in 0usize..6,
        n in 0usize..40,
        k in 0usize..80,
        seed in buffer(6 * 40 + 6 * 80 + 40 * 80),
    ) {
        let a = seed[..m * k].to_vec();
        let b = seed[m * k..m * k + n * k].to_vec();
        assert_tiers_bit_identical("gemm_nt (large regime)", || {
            let mut c = vec![0.0f64; m * n];
            tensor::gemm_nt(&a, &b, &mut c, m, k, n);
            c
        });
    }

    /// `gemm_nt` in the small-row L1-blocked regime (`rows <= 16`,
    /// `n <= 32`, `k > 2 * NT_K_BLOCK = 256`), including the k-block
    /// boundary overwrite-then-accumulate sequence and the leftover-`j`
    /// columns after the groups of four.
    #[test]
    fn gemm_nt_small_regime_matches_scalar_bits(
        m in 1usize..5,
        n in 1usize..12,
        k in 257usize..420,
        seed in buffer(5 * 420 + 12 * 420),
    ) {
        let a = seed[..m * k].to_vec();
        let b = seed[m * k..m * k + n * k].to_vec();
        assert_tiers_bit_identical("gemm_nt (small regime)", || {
            let mut c = vec![0.0f64; m * n];
            tensor::gemm_nt(&a, &b, &mut c, m, k, n);
            c
        });
    }

    /// `gemm_nt_indexed` reads minibatch rows in place through an index
    /// list (duplicates allowed) and must match the gather-then-`gemm_nt`
    /// result bit-for-bit on both tiers.
    #[test]
    fn gemm_nt_indexed_matches_scalar_bits(
        pool_rows in 1usize..8,
        n in 0usize..10,
        k in 0usize..300,
        idx_seed in proptest::collection::vec(0usize..8, 0..12),
        seed in buffer(8 * 300 + 10 * 300),
    ) {
        let features = Matrix::from_vec(pool_rows, k, seed[..pool_rows * k].to_vec());
        let b = seed[pool_rows * k..pool_rows * k + n * k].to_vec();
        let rows: Vec<usize> = idx_seed.iter().map(|&i| i % pool_rows).collect();
        assert_tiers_bit_identical("gemm_nt_indexed", || {
            let mut c = vec![0.0f64; rows.len() * n];
            tensor::gemm_nt_indexed(&features, &rows, &b, &mut c, n);
            c
        });
    }

    /// `gemm_tn` accumulate mode: `C += Aᵀ · B` on top of a random
    /// starting `C`, so the load-add-store path is what is compared.
    #[test]
    fn gemm_tn_accumulate_matches_scalar_bits(
        k in 0usize..40,
        m in 0usize..12,
        n in 0usize..70,
        seed in buffer(40 * 12 + 40 * 70 + 12 * 70),
    ) {
        let a = seed[..k * m].to_vec();
        let b = seed[k * m..k * m + k * n].to_vec();
        let c0 = seed[seed.len() - m * n..].to_vec();
        assert_tiers_bit_identical("gemm_tn (accumulate)", || {
            let mut c = c0.clone();
            tensor::gemm_tn(&a, &b, &mut c, k, m, n);
            c
        });
    }

    /// `gemm_tn_overwrite` store mode: `C = Aᵀ · B` over a garbage `C`
    /// that must be fully overwritten identically by both tiers.
    #[test]
    fn gemm_tn_overwrite_matches_scalar_bits(
        k in 0usize..40,
        m in 0usize..12,
        n in 0usize..70,
        seed in buffer(40 * 12 + 40 * 70 + 12 * 70),
    ) {
        let a = seed[..k * m].to_vec();
        let b = seed[k * m..k * m + k * n].to_vec();
        assert_tiers_bit_identical("gemm_tn_overwrite", || {
            let mut c = vec![f64::NAN; m * n];
            tensor::gemm_tn_overwrite(&a, &b, &mut c, k, m, n);
            c
        });
    }

    /// `gemm_tn_indexed_overwrite` fetches its `B` rows through dataset
    /// indices (the softmax-gradient hot path): same tile body, indexed
    /// row fetch, store mode.
    #[test]
    fn gemm_tn_indexed_matches_scalar_bits(
        pool_rows in 1usize..8,
        m in 0usize..12,
        n in 0usize..70,
        idx_seed in proptest::collection::vec(0usize..8, 0..10),
        seed in buffer(8 * 70 + 10 * 12),
    ) {
        let features = Matrix::from_vec(pool_rows, n, seed[..pool_rows * n].to_vec());
        let rows: Vec<usize> = idx_seed.iter().map(|&i| i % pool_rows).collect();
        let a = seed[seed.len() - rows.len() * m..].to_vec();
        assert_tiers_bit_identical("gemm_tn_indexed_overwrite", || {
            let mut c = vec![f64::NAN; m * n];
            tensor::gemm_tn_indexed_overwrite(&a, &features, &rows, &mut c, m);
            c
        });
    }

    /// `axpy` (the SGD parameter update): deliberately *unfused*
    /// multiply-then-add in both tiers — an FMA here would be a one-
    /// rounding difference this property would catch immediately.
    #[test]
    fn axpy_matches_scalar_bits(
        len in 0usize..200,
        alpha in element(),
        seed_x in buffer(200),
        seed_y in buffer(200),
    ) {
        let x = seed_x[..len].to_vec();
        let y0 = seed_y[..len].to_vec();
        assert_tiers_bit_identical("axpy", || {
            let mut y = y0.clone();
            tensor::axpy(alpha, &x, &mut y);
            y
        });
    }
}

/// End-to-end: a full batched loss/gradient pass and an evaluation sweep
/// over both model kinds produce bit-identical losses, gradients, and
/// accuracies under either tier — the composite the per-kernel
/// properties exist to guarantee.
#[test]
fn batched_training_and_eval_bits_match_across_tiers() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let kinds = [
        ModelKind::SoftmaxRegression {
            features: 300,
            classes: 7,
        },
        ModelKind::Mlp {
            features: 300,
            hidden: 11,
            classes: 7,
        },
    ];
    for kind in kinds {
        let mut rng = StdRng::seed_from_u64(0x51D0);
        let model: AnyModel = kind.build(&mut rng);
        let rows = 37;
        let data: Vec<f64> = (0..rows * 300).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let labels: Vec<usize> = (0..rows).map(|_| rng.gen_range(0..7)).collect();
        let features = Matrix::from_vec(rows, 300, data);
        let batch: Vec<usize> = (0..rows).step_by(2).collect();

        assert_tiers_bit_identical(&format!("{kind:?} loss/grad/accuracy"), || {
            let mut scratch = Scratch::new();
            let mut grad = Vec::new();
            let loss =
                model.loss_and_grad_batched(&features, &labels, &batch, &mut grad, &mut scratch);
            let acc = metrics::accuracy(&model, &features, &labels, None);
            grad.push(loss);
            grad.push(acc);
            grad
        });
    }
}
