//! Multinomial softmax regression.
//!
//! The default local model of the reproduction: a single linear layer with
//! softmax cross-entropy loss, 7850 parameters at the MNIST scale (784
//! inputs, 10 classes) — small enough that one hundred clients times one
//! hundred communication rounds runs in seconds, large enough that the
//! gradient geometry used by Algorithm 2 (cosine distances between client
//! updates) behaves like it does in the paper.

use crate::activation::softmax_in_place;
use crate::loss::{cross_entropy, cross_entropy_grad};
use crate::model::Model;
use crate::tensor::{Matrix, Scratch};
use crate::{init, tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A linear classifier with softmax cross-entropy loss.
///
/// Parameters are stored flat as `[W row-major (classes x features), b]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    features: usize,
    classes: usize,
    /// Flat parameters: weight matrix followed by bias vector.
    params: Vec<f64>,
}

impl SoftmaxRegression {
    /// Creates a model with Xavier-initialized weights and zero biases.
    pub fn new<R: Rng + ?Sized>(features: usize, classes: usize, rng: &mut R) -> Self {
        assert!(
            features > 0 && classes > 1,
            "need at least 1 feature and 2 classes"
        );
        let mut params = init::xavier_uniform(rng, features, classes);
        params.extend(init::zeros(classes));
        SoftmaxRegression {
            features,
            classes,
            params,
        }
    }

    /// Input dimensionality.
    pub fn feature_count(&self) -> usize {
        self.features
    }

    /// Number of output classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Weight connecting `feature` to `class`.
    pub fn weight(&self, class: usize, feature: usize) -> f64 {
        self.params[class * self.features + feature]
    }

    /// Bias of `class`.
    pub fn bias(&self, class: usize) -> f64 {
        self.params[self.classes * self.features + class]
    }
}

impl Model for SoftmaxRegression {
    fn num_params(&self) -> usize {
        self.classes * self.features + self.classes
    }

    fn params_ref(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    fn logits(&self, features: &[f64]) -> Vec<f64> {
        debug_assert_eq!(features.len(), self.features);
        (0..self.classes)
            .map(|c| {
                let row = &self.params[c * self.features..(c + 1) * self.features];
                tensor::dot(row, features) + self.bias(c)
            })
            .collect()
    }

    fn logits_block(&self, x: &[f64], rows: usize, scratch: &mut Scratch) {
        debug_assert_eq!(x.len(), rows * self.features);
        scratch.z.resize_in_place(rows, self.classes);
        // z = X · Wᵀ straight against the row-major parameter window —
        // the Gram kernel's dot tiles want exactly this layout, so no
        // transpose or copy is needed.
        let weights = &self.params[..self.classes * self.features];
        tensor::gemm_nt(
            x,
            weights,
            &mut scratch.z.data,
            rows,
            self.features,
            self.classes,
        );
        let bias = &self.params[self.classes * self.features..];
        for row in scratch.z.data.chunks_mut(self.classes) {
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    fn loss_and_sum_grad_batched(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
        grad: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> f64 {
        assert_eq!(
            features.rows,
            labels.len(),
            "features/labels length mismatch"
        );
        assert!(
            !rows.is_empty(),
            "gradient over an empty batch is undefined"
        );
        assert_eq!(features.cols, self.features, "feature width mismatch");
        let batch = rows.len();

        // Forward straight off the dataset rows — the minibatch is never
        // gathered into a contiguous copy.
        let weight_len = self.classes * self.features;
        scratch.z.resize_in_place(batch, self.classes);
        tensor::gemm_nt_indexed(
            features,
            rows,
            &self.params[..weight_len],
            &mut scratch.z.data,
            self.classes,
        );
        let bias = &self.params[weight_len..];
        for row in scratch.z.data.chunks_mut(self.classes) {
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }

        // delta = softmax(z) - one_hot(label), computed row-wise in place;
        // the loss accumulates from the same probabilities.
        let mut total_loss = 0.0;
        scratch.delta.resize_in_place(batch, self.classes);
        scratch.delta.data.copy_from_slice(&scratch.z.data);
        for (r, &row_index) in rows.iter().enumerate() {
            let delta_row = scratch.delta.row_mut(r);
            softmax_in_place(delta_row);
            let label = labels[row_index];
            total_loss += -(delta_row[label].max(1e-15)).ln();
            delta_row[label] -= 1.0;
        }

        // grad_W = δᵀ · X as one store-mode GEMM straight into the weight
        // window of `grad` (no zeroing pass over the buffer); grad_b is
        // the column sum of δ.
        let bias_offset = self.classes * self.features;
        grad.resize(self.num_params(), 0.0);
        let (grad_w, grad_b) = grad.split_at_mut(bias_offset);
        tensor::gemm_tn_indexed_overwrite(
            &scratch.delta.data,
            features,
            rows,
            grad_w,
            self.classes,
        );
        grad_b.fill(0.0);
        for r in 0..batch {
            tensor::axpy(1.0, scratch.delta.row(r), grad_b);
        }
        total_loss
    }

    fn loss_and_grad_reference(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
    ) -> (f64, Vec<f64>) {
        assert_eq!(
            features.rows,
            labels.len(),
            "features/labels length mismatch"
        );
        assert!(
            !rows.is_empty(),
            "gradient over an empty batch is undefined"
        );
        let mut grad = vec![0.0; self.num_params()];
        let mut total_loss = 0.0;
        let bias_offset = self.classes * self.features;

        for &r in rows {
            let x = features.row(r);
            let label = labels[r];
            let logits = self.logits(x);
            total_loss += cross_entropy(&logits, label);
            let g_logits = cross_entropy_grad(&logits, label);
            for (c, &g) in g_logits.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let w_grad = &mut grad[c * self.features..(c + 1) * self.features];
                tensor::axpy(g, x, w_grad);
                grad[bias_offset + c] += g;
            }
        }

        let scale = 1.0 / rows.len() as f64;
        tensor::scale(scale, &mut grad);
        (total_loss * scale, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{argmax, dataset_loss};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> (Matrix, Vec<usize>) {
        // Two well-separated 2D Gaussian-ish blobs placed deterministically.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let jitter = (i as f64) * 0.01;
            rows.push(vec![1.0 + jitter, 1.0 - jitter]);
            labels.push(0usize);
            rows.push(vec![-1.0 - jitter, -1.0 + jitter]);
            labels.push(1usize);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn construction_and_accessors() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = SoftmaxRegression::new(5, 3, &mut rng);
        assert_eq!(m.feature_count(), 5);
        assert_eq!(m.class_count(), 3);
        assert_eq!(m.num_params(), 18);
        assert_eq!(m.params().len(), 18);
        // Biases start at zero.
        for c in 0..3 {
            assert_eq!(m.bias(c), 0.0);
        }
        let _ = m.weight(2, 4);
    }

    #[test]
    #[should_panic(expected = "parameter length mismatch")]
    fn set_params_rejects_wrong_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = SoftmaxRegression::new(5, 3, &mut rng);
        m.set_params(&[0.0; 17]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = SoftmaxRegression::new(4, 3, &mut rng);
        let features = Matrix::from_rows(&[
            vec![0.5, -0.2, 0.1, 0.9],
            vec![-0.3, 0.8, -0.5, 0.2],
            vec![0.0, 0.1, 0.2, -0.7],
        ]);
        let labels = vec![0, 1, 2];
        let rows = vec![0, 1, 2];
        let (_, grad) = m.loss_and_grad(&features, &labels, &rows);

        let eps = 1e-6;
        let base_params = m.params();
        for i in (0..m.num_params()).step_by(3) {
            let mut plus = m.clone();
            let mut p = base_params.clone();
            p[i] += eps;
            plus.set_params(&p);
            let mut minus = m.clone();
            let mut p = base_params.clone();
            p[i] -= eps;
            minus.set_params(&p);
            let numeric = (dataset_loss(&plus, &features, &labels)
                - dataset_loss(&minus, &features, &labels))
                / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-5,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn sgd_on_separable_data_reaches_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = SoftmaxRegression::new(2, 2, &mut rng);
        let (features, labels) = toy_dataset();
        let rows: Vec<usize> = (0..features.rows).collect();
        let initial_loss = dataset_loss(&m, &features, &labels);
        for _ in 0..200 {
            let (_, grad) = m.loss_and_grad(&features, &labels, &rows);
            let mut p = m.params();
            tensor::axpy(-0.5, &grad, &mut p);
            m.set_params(&p);
        }
        let final_loss = dataset_loss(&m, &features, &labels);
        assert!(
            final_loss < initial_loss * 0.2,
            "loss {initial_loss} -> {final_loss}"
        );
        let correct = rows
            .iter()
            .filter(|&&r| argmax(&m.logits(features.row(r))) == labels[r])
            .count();
        assert_eq!(
            correct, features.rows,
            "separable data should be fit exactly"
        );
    }

    #[test]
    fn single_row_batches_are_supported() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = SoftmaxRegression::new(3, 2, &mut rng);
        let features = Matrix::from_rows(&[vec![1.0, 0.0, -1.0], vec![0.5, 0.5, 0.5]]);
        let labels = vec![0, 1];
        let (loss, grad) = m.loss_and_grad(&features, &labels, &[1]);
        assert!(loss > 0.0);
        assert_eq!(grad.len(), m.num_params());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = SoftmaxRegression::new(3, 2, &mut rng);
        let features = Matrix::from_rows(&[vec![1.0, 0.0, -1.0]]);
        let labels = vec![0];
        let _ = m.loss_and_grad(&features, &labels, &[]);
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = SoftmaxRegression::new(4, 3, &mut rng);
        let json = serde_json::to_string(&m).unwrap();
        let back: SoftmaxRegression = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        let x = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(back.logits(&x), m.logits(&x));
    }
}
