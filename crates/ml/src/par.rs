//! Deterministic data-parallel helpers built on `std::thread::scope`.
//!
//! The workspace previously reached for rayon's parallel iterators in
//! three hot loops (per-row matvecs, per-client local SGD). The offline
//! build has no rayon, and the loops it parallelized are exactly the
//! ones the batched GEMM engine restructures — so the replacement is a
//! deliberately small fork/join layer: inputs are split into one
//! contiguous chunk per worker, each worker writes its own slice of the
//! output, and chunks are stitched back in index order. Scheduling can
//! never reorder results, so parallel runs are bit-identical to
//! sequential runs — a property the reproducibility tests assert.
//!
//! Every entry point degrades to a plain inline loop when the machine
//! has a single core or the input is too small to amortize a thread
//! spawn.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

thread_local! {
    /// Set while the current thread is executing inside one of this
    /// module's workers. Nested helpers then stay serial instead of
    /// spawning a second layer of threads over the same cores (e.g. a
    /// GEMM inside a per-client training task).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };

    /// Scoped override installed by [`with_thread_limit`]: while set,
    /// [`max_threads`] reports this value instead of the host or
    /// environment limit. `0` means "no override".
    static THREAD_LIMIT: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with [`max_threads`] clamped to `limit` (at least 1) on the
/// *current* thread. The benchmark scaling curves use this to sweep
/// explicit thread counts {1, 2, 4, 8} without touching global state;
/// worker threads spawned inside the scope observe the usual nesting
/// rule (they report 1), so the limit composes with — never overrides —
/// worker serialization.
pub fn with_thread_limit<T>(limit: usize, f: impl FnOnce() -> T) -> T {
    THREAD_LIMIT.with(|cell| {
        let previous = cell.replace(limit.max(1));
        let result = f();
        cell.set(previous);
        result
    })
}

fn run_as_worker<T>(f: impl FnOnce() -> T) -> T {
    IN_WORKER.with(|flag| {
        let previous = flag.replace(true);
        let result = f();
        flag.set(previous);
        result
    })
}

/// Number of worker threads the helpers will use at most. Cached:
/// `available_parallelism` is a syscall, and the kernels consult this on
/// every dispatch. Returns 1 inside an existing worker, so parallel
/// regions never nest. A [`with_thread_limit`] scope takes precedence;
/// otherwise the `BFL_MAX_THREADS` environment variable (when set to a
/// positive integer, read once) caps the host limit — the CI determinism
/// suites use it to pin explicit 2- and 8-thread runs.
pub fn max_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let limit = THREAD_LIMIT.with(Cell::get);
    if limit > 0 {
        return limit;
    }
    static MAX_THREADS: OnceLock<usize> = OnceLock::new();
    *MAX_THREADS.get_or_init(|| {
        let host = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        match std::env::var("BFL_MAX_THREADS") {
            Ok(value) => value
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or(host),
            Err(_) => host,
        }
    })
}

/// Number of workers a row-parallel job of `rows` rows would use, given
/// the minimum rows worth handing one thread. Kernels use this to pick
/// the plain serial core when the answer is 1, keeping the hot loop free
/// of any fork/join machinery.
pub fn plan_workers(rows: usize, min_rows_per_thread: usize) -> usize {
    max_threads().min(rows / min_rows_per_thread.max(1)).max(1)
}

/// Balanced split: chunk sizes differ by at most one.
fn chunk_len(total: usize, workers: usize, index: usize) -> std::ops::Range<usize> {
    let base = total / workers;
    let extra = total % workers;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    start..start + len
}

/// Maps `f` over `items` (with the item index), preserving order.
///
/// `min_per_thread` is the smallest number of items worth giving one
/// worker; below `2 * min_per_thread` the map runs inline.
pub fn par_map<T, U, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(
        items,
        min_per_thread,
        || (),
        |(), index, item| f(index, item),
    )
}

/// Like [`par_map`], but each worker first builds a reusable state with
/// `init` and threads it through every item of its chunk — the hook the
/// training engine uses to reuse one [`crate::tensor::Scratch`] across
/// all clients a worker processes.
#[inline]
pub fn par_map_with<T, S, U, I, F>(items: &[T], min_per_thread: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let workers = plan_workers(items.len(), min_per_thread);
    if workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(&mut state, index, item))
            .collect();
    }

    let mut results: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let range = chunk_len(items.len(), workers, w);
            let chunk = &items[range.clone()];
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                run_as_worker(|| {
                    let mut state = init();
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(offset, item)| f(&mut state, range.start + offset, item))
                        .collect::<Vec<U>>()
                })
            }));
        }
        for handle in handles {
            results.push(handle.join().expect("par_map worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs `f` over disjoint contiguous row-chunks of `data`, in parallel.
///
/// `data` is split along `row_len`-sized rows into one chunk per worker;
/// `f` receives the starting row index and the mutable chunk. Used by
/// the GEMM kernels to parallelize over blocks of output rows.
#[inline]
pub fn par_rows_mut<T, F>(data: &mut [T], row_len: usize, min_rows_per_thread: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    debug_assert_eq!(data.len() % row_len, 0);
    let rows = data.len() / row_len;
    let workers = plan_workers(rows, min_rows_per_thread);
    if workers <= 1 {
        f(0, data);
        return;
    }

    std::thread::scope(|scope| {
        let mut rest = data;
        let mut row_start = 0;
        for w in 0..workers {
            let range = chunk_len(rows, workers, w);
            let (chunk, tail) = rest.split_at_mut(range.len() * row_len);
            rest = tail;
            let f = &f;
            let start = row_start;
            scope.spawn(move || run_as_worker(|| f(start, chunk)));
            row_start += range.len();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_indices() {
        let items: Vec<usize> = (0..97).collect();
        let out = par_map(&items, 1, |index, &item| {
            assert_eq!(index, item);
            item * 3
        });
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, 1, |_, &x| x).is_empty());
    }

    #[test]
    fn par_map_with_reuses_state_within_a_worker() {
        let items: Vec<usize> = (0..40).collect();
        let out = par_map_with(
            &items,
            1,
            || 0usize,
            |calls, _, &item| {
                *calls += 1;
                (item, *calls)
            },
        );
        // Call counters grow monotonically inside each worker's chunk and
        // every item is present exactly once, in order.
        assert_eq!(out.len(), 40);
        for (i, (item, calls)) in out.iter().enumerate() {
            assert_eq!(*item, i);
            assert!(*calls >= 1);
        }
    }

    #[test]
    fn nested_parallel_regions_stay_serial() {
        let items: Vec<usize> = (0..8).collect();
        // From inside a worker, further fan-out must collapse to 1.
        let out = par_map(&items, 1, |_, _| max_threads());
        // On a single-core host the map runs inline and max_threads is
        // the host limit; with real workers every one must observe 1.
        if max_threads() > 1 {
            assert!(out.iter().all(|&threads| threads == 1));
        }
        assert_eq!(out.len(), items.len());
    }

    #[test]
    fn par_rows_mut_covers_every_row_once() {
        let rows = 23;
        let cols = 5;
        let mut data = vec![0.0f64; rows * cols];
        par_rows_mut(&mut data, cols, 1, |row_start, chunk| {
            for (r, row) in chunk.chunks_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (row_start + r) as f64;
                }
            }
        });
        for (r, row) in data.chunks(cols).enumerate() {
            assert!(row.iter().all(|&v| v == r as f64));
        }
    }

    #[test]
    fn thread_limit_scopes_nest_and_restore() {
        let host = max_threads();
        with_thread_limit(4, || {
            assert_eq!(max_threads(), 4);
            with_thread_limit(2, || assert_eq!(max_threads(), 2));
            assert_eq!(max_threads(), 4);
            // The clamp floors at one thread.
            with_thread_limit(0, || assert_eq!(max_threads(), 1));
        });
        assert_eq!(max_threads(), host);
    }

    #[test]
    fn thread_limit_changes_fanout_but_not_results() {
        let items: Vec<usize> = (0..64).collect();
        let serial = with_thread_limit(1, || par_map(&items, 1, |_, &x| x * 7 + 1));
        for limit in [2, 4, 8] {
            let parallel = with_thread_limit(limit, || par_map(&items, 1, |_, &x| x * 7 + 1));
            assert_eq!(parallel, serial, "limit={limit}");
        }
    }

    #[test]
    fn chunk_partition_is_balanced_and_complete() {
        for total in [0usize, 1, 7, 16, 23] {
            for workers in 1..=5usize {
                let mut covered = 0;
                let mut previous_end = 0;
                for w in 0..workers {
                    let range = chunk_len(total, workers, w);
                    assert_eq!(range.start, previous_end);
                    previous_end = range.end;
                    covered += range.len();
                }
                assert_eq!(covered, total);
                assert_eq!(previous_end, total);
            }
        }
    }
}
