//! Flat gradient/parameter vectors and the vector utilities the FAIR-BFL
//! machinery is built on.
//!
//! Algorithm 2 clusters the set of uploaded vectors `W^k_{r+1}` and weighs
//! high-contribution clients by the cosine distance `θ_i` between their
//! upload and the global update; Equation 1 then aggregates with weights
//! `p_i = θ_i / Σ θ_k`. Those operations — cosine similarity/distance,
//! norms, simple and weighted averaging — live here, together with the
//! byte-level serialization used when a gradient is packed into a
//! blockchain transaction payload.

use crate::tensor;

/// A flat vector of model parameters ("the gradient" in the paper's sense).
pub type GradientVector = Vec<f64>;

/// Cosine similarity between two equal-length vectors, in `[-1, 1]`.
/// Returns 0 when either vector is all-zero.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine similarity needs equal lengths");
    let na = tensor::l2_norm(a);
    let nb = tensor::l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (tensor::dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine distance `1 - cosine_similarity`, in `[0, 2]`. This is the θ of
/// Algorithm 2: "the larger the θ, the farther the distance".
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    1.0 - cosine_similarity(a, b)
}

/// Euclidean distance between two equal-length vectors.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    tensor::l2_norm(&tensor::sub(a, b))
}

/// Simple (unweighted) average of a set of equal-length vectors — the
/// paper's "Simple Average" aggregation in Algorithm 1 line 24.
pub fn average(vectors: &[GradientVector]) -> GradientVector {
    let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
    average_refs(&refs)
}

/// [`average`] over borrowed slices — aggregation call sites use this to
/// average uploads in place instead of cloning every parameter vector.
pub fn average_refs(vectors: &[&[f64]]) -> GradientVector {
    assert!(!vectors.is_empty(), "cannot average zero vectors");
    let len = vectors[0].len();
    let mut out = vec![0.0; len];
    for v in vectors {
        assert_eq!(v.len(), len, "all vectors must have equal length");
        tensor::axpy(1.0, v, &mut out);
    }
    tensor::scale(1.0 / vectors.len() as f64, &mut out);
    out
}

/// Coordinate-wise median of a set of equal-length vectors — the robust
/// anchor that stays near the honest mass even when a single upload is
/// scaled far beyond the honest head-count (the attack that corrupts the
/// plain average).
pub fn median_refs(vectors: &[&[f64]]) -> GradientVector {
    trimmed_mean_refs(vectors, 0.5)
}

/// Coordinate-wise trimmed mean: per coordinate, the smallest and largest
/// `floor(trim_ratio * n)` values are discarded and the rest averaged.
/// `trim_ratio` must be in `[0, 0.5]`; `0` is the plain average and `0.5`
/// degenerates to the coordinate-wise median (for even counts, the mean of
/// the two middle values).
pub fn trimmed_mean_refs(vectors: &[&[f64]], trim_ratio: f64) -> GradientVector {
    assert!(!vectors.is_empty(), "cannot aggregate zero vectors");
    assert!(
        (0.0..=0.5).contains(&trim_ratio),
        "trim_ratio must be in [0, 0.5]"
    );
    let n = vectors.len();
    let len = vectors[0].len();
    for v in vectors {
        assert_eq!(v.len(), len, "all vectors must have equal length");
    }
    // Number trimmed from each end; always leave at least one value (for
    // ratio 0.5 and even n that means the two middle values, i.e. the
    // conventional even-count median).
    let trim = ((n as f64 * trim_ratio).floor() as usize).min((n - 1) / 2);
    let kept = n - 2 * trim;
    let mut out = Vec::with_capacity(len);
    let mut column = vec![0.0f64; n];
    for coordinate in 0..len {
        for (row, v) in vectors.iter().enumerate() {
            column[row] = v[coordinate];
        }
        column.sort_by(|a, b| a.partial_cmp(b).expect("gradient values are not NaN"));
        out.push(column[trim..n - trim].iter().sum::<f64>() / kept as f64);
    }
    out
}

/// Weighted average `Σ p_i v_i / Σ p_i` — Equation 1's fair aggregation.
/// Weights must be non-negative and not all zero.
pub fn weighted_average(vectors: &[GradientVector], weights: &[f64]) -> GradientVector {
    let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
    weighted_average_refs(&refs, weights)
}

/// [`weighted_average`] over borrowed slices.
pub fn weighted_average_refs(vectors: &[&[f64]], weights: &[f64]) -> GradientVector {
    assert_eq!(
        vectors.len(),
        weights.len(),
        "one weight per vector required"
    );
    assert!(!vectors.is_empty(), "cannot average zero vectors");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let len = vectors[0].len();
    let mut out = vec![0.0; len];
    for (v, &w) in vectors.iter().zip(weights.iter()) {
        assert_eq!(v.len(), len, "all vectors must have equal length");
        tensor::axpy(w / total, v, &mut out);
    }
    out
}

/// Serializes a gradient into little-endian `f64` bytes for use as a
/// blockchain transaction payload.
pub fn to_bytes(gradient: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(gradient.len() * 8);
    for value in gradient {
        bytes.extend_from_slice(&value.to_le_bytes());
    }
    bytes
}

/// Deserializes a gradient previously produced by [`to_bytes`]. Returns
/// `None` if the byte length is not a multiple of 8.
pub fn from_bytes(bytes: &[u8]) -> Option<GradientVector> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|chunk| {
                f64::from_le_bytes([
                    chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cosine_similarity_known_cases() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn cosine_distance_ranges() {
        assert!((cosine_distance(&[1.0, 2.0], &[2.0, 4.0])).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn l2_distance_known_case() {
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn average_of_identical_vectors_is_that_vector() {
        let v = vec![1.0, -2.0, 3.0];
        let avg = average(&[v.clone(), v.clone(), v.clone()]);
        for (a, b) in avg.iter().zip(v.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn average_matches_manual_computation() {
        let avg = average(&[vec![1.0, 0.0], vec![3.0, 2.0]]);
        assert_eq!(avg, vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "zero vectors")]
    fn average_of_nothing_panics() {
        let _ = average(&[]);
    }

    #[test]
    fn median_is_robust_to_one_wild_vector() {
        let honest = vec![vec![1.0, -1.0], vec![1.1, -0.9], vec![0.9, -1.1]];
        let mut with_attacker = honest.clone();
        with_attacker.push(vec![-8.0, 8.0]);
        let refs: Vec<&[f64]> = with_attacker.iter().map(|v| v.as_slice()).collect();
        let median = median_refs(&refs);
        // The attacker drags the mean negative but barely moves the median.
        let mean = average(&with_attacker);
        assert!(mean[0] < 0.0);
        assert!(median[0] > 0.9 && median[0] < 1.1);
        assert!(median[1] < -0.8);
    }

    #[test]
    fn median_of_odd_count_is_the_middle_value() {
        let vs = [vec![5.0], vec![1.0], vec![3.0]];
        let refs: Vec<&[f64]> = vs.iter().map(|v| v.as_slice()).collect();
        assert_eq!(median_refs(&refs), vec![3.0]);
    }

    #[test]
    fn median_of_even_count_averages_the_middle_pair() {
        let vs = [vec![1.0], vec![2.0], vec![10.0], vec![4.0]];
        let refs: Vec<&[f64]> = vs.iter().map(|v| v.as_slice()).collect();
        assert_eq!(median_refs(&refs), vec![3.0]);
    }

    #[test]
    fn trimmed_mean_interpolates_between_mean_and_median() {
        let vs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![100.0]];
        let refs: Vec<&[f64]> = vs.iter().map(|v| v.as_slice()).collect();
        // ratio 0 is the plain mean (up to summation rounding).
        assert!((trimmed_mean_refs(&refs, 0.0)[0] - average(&vs)[0]).abs() < 1e-12);
        // ratio 0.2 trims one value from each end: mean of 1, 2, 3.
        assert_eq!(trimmed_mean_refs(&refs, 0.2), vec![2.0]);
        // ratio 0.5 is the median.
        assert_eq!(trimmed_mean_refs(&refs, 0.5), vec![2.0]);
    }

    #[test]
    fn trimmed_mean_never_trims_everything() {
        let vs = [vec![1.0], vec![3.0]];
        let refs: Vec<&[f64]> = vs.iter().map(|v| v.as_slice()).collect();
        assert_eq!(trimmed_mean_refs(&refs, 0.5), vec![2.0]);
        let single = [&[7.0][..]];
        assert_eq!(trimmed_mean_refs(&single, 0.5), vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "zero vectors")]
    fn median_of_nothing_panics() {
        let _ = median_refs(&[]);
    }

    #[test]
    #[should_panic(expected = "trim_ratio")]
    fn out_of_range_trim_ratio_panics() {
        let _ = trimmed_mean_refs(&[&[1.0][..]], 0.6);
    }

    #[test]
    fn weighted_average_reduces_to_average_with_equal_weights() {
        let vs = vec![vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 1.0]];
        let w = vec![1.0, 1.0, 1.0];
        let a = average(&vs);
        let b = weighted_average(&vs, &w);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_average_weights_matter() {
        let vs = vec![vec![0.0], vec![10.0]];
        let heavy_second = weighted_average(&vs, &[1.0, 9.0]);
        assert!((heavy_second[0] - 9.0).abs() < 1e-12);
        let only_first = weighted_average(&vs, &[1.0, 0.0]);
        assert!((only_first[0] - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        let _ = weighted_average(&[vec![1.0]], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        let _ = weighted_average(&[vec![1.0], vec![2.0]], &[0.5, -0.5]);
    }

    #[test]
    fn byte_round_trip_and_malformed_input() {
        let g = vec![1.5, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let bytes = to_bytes(&g);
        assert_eq!(bytes.len(), g.len() * 8);
        assert_eq!(from_bytes(&bytes), Some(g));
        assert_eq!(from_bytes(&bytes[..7]), None);
        assert_eq!(from_bytes(&[]), Some(vec![]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cosine_similarity_is_bounded(a in proptest::collection::vec(-100.0f64..100.0, 1..32)) {
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            let s = cosine_similarity(&a, &b);
            prop_assert!((-1.0..=1.0).contains(&s));
            prop_assert!((0.0..=2.0).contains(&cosine_distance(&a, &b)));
        }

        #[test]
        fn cosine_similarity_is_scale_invariant(a in proptest::collection::vec(-10.0f64..10.0, 2..16), k in 0.1f64..50.0) {
            let b: Vec<f64> = a.iter().map(|v| v * 0.7 + 0.1).collect();
            let scaled: Vec<f64> = a.iter().map(|v| v * k).collect();
            let s1 = cosine_similarity(&a, &b);
            let s2 = cosine_similarity(&scaled, &b);
            prop_assert!((s1 - s2).abs() < 1e-9);
        }

        #[test]
        fn weighted_average_stays_in_convex_hull(values in proptest::collection::vec(-50.0f64..50.0, 2..8), w in proptest::collection::vec(0.01f64..10.0, 2..8)) {
            let n = values.len().min(w.len());
            let vectors: Vec<GradientVector> = values[..n].iter().map(|&v| vec![v]).collect();
            let avg = weighted_average(&vectors, &w[..n]);
            let lo = values[..n].iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values[..n].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(avg[0] >= lo - 1e-9 && avg[0] <= hi + 1e-9);
        }

        #[test]
        fn byte_round_trip_random(g in proptest::collection::vec(-1e12f64..1e12, 0..64)) {
            prop_assert_eq!(from_bytes(&to_bytes(&g)), Some(g));
        }

        #[test]
        fn trimmed_mean_stays_in_convex_hull(values in proptest::collection::vec(-50.0f64..50.0, 1..12), ratio in 0.0f64..0.5) {
            let vectors: Vec<GradientVector> = values.iter().map(|&v| vec![v]).collect();
            let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
            let trimmed = trimmed_mean_refs(&refs, ratio);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(trimmed[0] >= lo - 1e-9 && trimmed[0] <= hi + 1e-9);
        }
    }
}
