//! The model abstraction shared by the FL and BFL layers.
//!
//! A [`Model`] owns its parameters as a flat `f64` vector (the "gradient"
//! `w` exchanged by Algorithm 1), can compute the mini-batch loss gradient
//! with respect to those parameters, and can classify samples. Two concrete
//! models are provided — [`crate::SoftmaxRegression`] and [`crate::Mlp`] —
//! and [`ModelKind`] selects between them by configuration, yielding an
//! [`AnyModel`] that the federated machinery can hold without generics.

use crate::linear::SoftmaxRegression;
use crate::mlp::Mlp;
use crate::tensor::{Matrix, Scratch};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trainable classification model with flat parameter access.
///
/// The compute-heavy entry points come in two flavours: the batched
/// engine (`loss_and_grad_batched`, `logits_batch`) that moves whole
/// minibatches through the GEMM kernels of [`crate::tensor`], and the
/// retained per-sample reference path (`loss_and_grad_reference`) used
/// by the equivalence tests and the throughput benchmark.
/// [`Model::loss_and_grad`] dispatches between them according to
/// [`crate::engine::reference_mode`].
pub trait Model {
    /// Total number of parameters.
    fn num_params(&self) -> usize;

    /// Borrows the flat parameter vector without copying — the accessor
    /// hot paths use to read or hash parameters in place.
    fn params_ref(&self) -> &[f64];

    /// Copies the parameters into a flat vector (the uploadable "gradient").
    fn params(&self) -> Vec<f64> {
        self.params_ref().to_vec()
    }

    /// Mutably borrows the flat parameter vector, letting optimizers
    /// apply updates in place instead of round-tripping a copy through
    /// [`Model::set_params`] every step.
    fn params_mut(&mut self) -> &mut [f64];

    /// Overwrites the parameters from a flat vector of length
    /// [`Model::num_params`].
    fn set_params(&mut self, params: &[f64]);

    /// Raw class scores for a single feature row.
    fn logits(&self, features: &[f64]) -> Vec<f64>;

    /// Batched forward pass over a borrowed row-major block of `rows`
    /// feature rows, writing logits into `scratch.z` (`rows x classes`).
    /// Taking the block as a slice lets evaluation run directly on
    /// contiguous ranges of the dataset without gathering a copy.
    fn logits_block(&self, x: &[f64], rows: usize, scratch: &mut Scratch);

    /// Batched forward pass: computes logits for every row of the packed
    /// batch `scratch.x` into `scratch.z` (`batch x classes`).
    fn logits_batch(&self, scratch: &mut Scratch) {
        let x = std::mem::take(&mut scratch.x);
        self.logits_block(&x.data, x.rows, scratch);
        scratch.x = x;
    }

    /// Batched loss/gradient over the selected rows, as sums over the
    /// batch (no `1/B` scaling), writing the flat gradient into `grad`
    /// (resized as needed) and reusing `scratch` buffers. Returns the
    /// summed loss. The training loop consumes this form directly,
    /// folding the `1/B` factor into the SGD step so no extra pass over
    /// the gradient is spent on scaling.
    fn loss_and_sum_grad_batched(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
        grad: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> f64;

    /// Batched mean loss and gradient over the selected rows, writing the
    /// flat gradient into `grad` (resized as needed) and reusing
    /// `scratch` buffers. Returns the mean loss.
    fn loss_and_grad_batched(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
        grad: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> f64 {
        let summed = self.loss_and_sum_grad_batched(features, labels, rows, grad, scratch);
        let scale = 1.0 / rows.len() as f64;
        crate::tensor::scale(scale, grad);
        summed * scale
    }

    /// Per-sample reference implementation of [`Model::loss_and_grad`],
    /// kept verbatim from the pre-batching engine for equivalence tests
    /// and A/B speedup measurement.
    fn loss_and_grad_reference(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
    ) -> (f64, Vec<f64>);

    /// Mean loss and flat parameter gradient over the selected rows of the
    /// dataset (`rows` indexes into `features` / `labels`). Dispatches to
    /// the batched engine unless the process-wide reference mode is set.
    fn loss_and_grad(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
    ) -> (f64, Vec<f64>) {
        if crate::engine::reference_mode() {
            self.loss_and_grad_reference(features, labels, rows)
        } else {
            let mut scratch = Scratch::new();
            let mut grad = Vec::new();
            let loss = self.loss_and_grad_batched(features, labels, rows, &mut grad, &mut scratch);
            (loss, grad)
        }
    }

    /// Predicted class for a single feature row (argmax of the logits).
    fn predict_row(&self, features: &[f64]) -> usize {
        argmax(&self.logits(features))
    }
}

/// Index of the maximum element (first one on ties).
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Mean loss of a model over an entire dataset.
pub fn dataset_loss<M: Model + ?Sized>(model: &M, features: &Matrix, labels: &[usize]) -> f64 {
    let rows: Vec<usize> = (0..features.rows).collect();
    model.loss_and_grad(features, labels, &rows).0
}

/// Configuration describing which concrete model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multinomial softmax (logistic) regression.
    SoftmaxRegression {
        /// Input dimensionality.
        features: usize,
        /// Number of classes.
        classes: usize,
    },
    /// One-hidden-layer multi-layer perceptron with ReLU activation.
    Mlp {
        /// Input dimensionality.
        features: usize,
        /// Hidden-layer width.
        hidden: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl ModelKind {
    /// The default model used throughout the evaluation: softmax regression
    /// on 28x28 images with 10 classes, matching the scale of the paper's
    /// MNIST setup.
    pub fn default_mnist() -> Self {
        ModelKind::SoftmaxRegression {
            features: 784,
            classes: 10,
        }
    }

    /// Number of parameters a model of this kind will have.
    pub fn num_params(&self) -> usize {
        match *self {
            ModelKind::SoftmaxRegression { features, classes } => classes * features + classes,
            ModelKind::Mlp {
                features,
                hidden,
                classes,
            } => hidden * features + hidden + classes * hidden + classes,
        }
    }

    /// Instantiates the model with randomly initialized parameters.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> AnyModel {
        match *self {
            ModelKind::SoftmaxRegression { features, classes } => {
                AnyModel::Softmax(SoftmaxRegression::new(features, classes, rng))
            }
            ModelKind::Mlp {
                features,
                hidden,
                classes,
            } => AnyModel::Mlp(Mlp::new(features, hidden, classes, rng)),
        }
    }
}

/// Enum dispatch over the concrete model types, so federated code can store
/// models without generic parameters or trait objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyModel {
    /// Softmax regression variant.
    Softmax(SoftmaxRegression),
    /// MLP variant.
    Mlp(Mlp),
}

impl Model for AnyModel {
    fn num_params(&self) -> usize {
        match self {
            AnyModel::Softmax(m) => m.num_params(),
            AnyModel::Mlp(m) => m.num_params(),
        }
    }

    fn params_ref(&self) -> &[f64] {
        match self {
            AnyModel::Softmax(m) => m.params_ref(),
            AnyModel::Mlp(m) => m.params_ref(),
        }
    }

    fn params_mut(&mut self) -> &mut [f64] {
        match self {
            AnyModel::Softmax(m) => m.params_mut(),
            AnyModel::Mlp(m) => m.params_mut(),
        }
    }

    fn set_params(&mut self, params: &[f64]) {
        match self {
            AnyModel::Softmax(m) => m.set_params(params),
            AnyModel::Mlp(m) => m.set_params(params),
        }
    }

    fn logits(&self, features: &[f64]) -> Vec<f64> {
        match self {
            AnyModel::Softmax(m) => m.logits(features),
            AnyModel::Mlp(m) => m.logits(features),
        }
    }

    fn logits_block(&self, x: &[f64], rows: usize, scratch: &mut Scratch) {
        match self {
            AnyModel::Softmax(m) => m.logits_block(x, rows, scratch),
            AnyModel::Mlp(m) => m.logits_block(x, rows, scratch),
        }
    }

    fn loss_and_sum_grad_batched(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
        grad: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> f64 {
        match self {
            AnyModel::Softmax(m) => {
                m.loss_and_sum_grad_batched(features, labels, rows, grad, scratch)
            }
            AnyModel::Mlp(m) => m.loss_and_sum_grad_batched(features, labels, rows, grad, scratch),
        }
    }

    fn loss_and_grad_reference(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
    ) -> (f64, Vec<f64>) {
        match self {
            AnyModel::Softmax(m) => m.loss_and_grad_reference(features, labels, rows),
            AnyModel::Mlp(m) => m.loss_and_grad_reference(features, labels, rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[-3.0]), 0);
        assert_eq!(argmax(&[0.0, 0.0]), 0);
    }

    #[test]
    fn model_kind_param_counts() {
        assert_eq!(
            ModelKind::SoftmaxRegression {
                features: 784,
                classes: 10
            }
            .num_params(),
            7850
        );
        assert_eq!(
            ModelKind::Mlp {
                features: 784,
                hidden: 32,
                classes: 10
            }
            .num_params(),
            784 * 32 + 32 + 32 * 10 + 10
        );
        assert_eq!(ModelKind::default_mnist().num_params(), 7850);
    }

    #[test]
    fn build_produces_models_with_matching_param_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            ModelKind::SoftmaxRegression {
                features: 20,
                classes: 4,
            },
            ModelKind::Mlp {
                features: 20,
                hidden: 8,
                classes: 4,
            },
        ] {
            let model = kind.build(&mut rng);
            assert_eq!(model.num_params(), kind.num_params());
            assert_eq!(model.params().len(), kind.num_params());
        }
    }

    #[test]
    fn any_model_round_trips_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let kind = ModelKind::SoftmaxRegression {
            features: 6,
            classes: 3,
        };
        let mut model = kind.build(&mut rng);
        let new_params: Vec<f64> = (0..model.num_params()).map(|i| i as f64 * 0.01).collect();
        model.set_params(&new_params);
        assert_eq!(model.params(), new_params);
    }

    #[test]
    fn model_kind_serde_round_trip() {
        let kind = ModelKind::Mlp {
            features: 10,
            hidden: 4,
            classes: 3,
        };
        let json = serde_json::to_string(&kind).unwrap();
        let back: ModelKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, kind);
    }
}
