//! The model abstraction shared by the FL and BFL layers.
//!
//! A [`Model`] owns its parameters as a flat `f64` vector (the "gradient"
//! `w` exchanged by Algorithm 1), can compute the mini-batch loss gradient
//! with respect to those parameters, and can classify samples. Two concrete
//! models are provided — [`crate::SoftmaxRegression`] and [`crate::Mlp`] —
//! and [`ModelKind`] selects between them by configuration, yielding an
//! [`AnyModel`] that the federated machinery can hold without generics.

use crate::linear::SoftmaxRegression;
use crate::mlp::Mlp;
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trainable classification model with flat parameter access.
pub trait Model {
    /// Total number of parameters.
    fn num_params(&self) -> usize;

    /// Copies the parameters into a flat vector (the uploadable "gradient").
    fn params(&self) -> Vec<f64>;

    /// Overwrites the parameters from a flat vector of length
    /// [`Model::num_params`].
    fn set_params(&mut self, params: &[f64]);

    /// Raw class scores for a single feature row.
    fn logits(&self, features: &[f64]) -> Vec<f64>;

    /// Mean loss and flat parameter gradient over the selected rows of the
    /// dataset (`rows` indexes into `features` / `labels`).
    fn loss_and_grad(&self, features: &Matrix, labels: &[usize], rows: &[usize]) -> (f64, Vec<f64>);

    /// Predicted class for a single feature row (argmax of the logits).
    fn predict_row(&self, features: &[f64]) -> usize {
        argmax(&self.logits(features))
    }
}

/// Index of the maximum element (first one on ties).
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Mean loss of a model over an entire dataset.
pub fn dataset_loss<M: Model + ?Sized>(model: &M, features: &Matrix, labels: &[usize]) -> f64 {
    let rows: Vec<usize> = (0..features.rows).collect();
    model.loss_and_grad(features, labels, &rows).0
}

/// Configuration describing which concrete model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multinomial softmax (logistic) regression.
    SoftmaxRegression {
        /// Input dimensionality.
        features: usize,
        /// Number of classes.
        classes: usize,
    },
    /// One-hidden-layer multi-layer perceptron with ReLU activation.
    Mlp {
        /// Input dimensionality.
        features: usize,
        /// Hidden-layer width.
        hidden: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl ModelKind {
    /// The default model used throughout the evaluation: softmax regression
    /// on 28x28 images with 10 classes, matching the scale of the paper's
    /// MNIST setup.
    pub fn default_mnist() -> Self {
        ModelKind::SoftmaxRegression {
            features: 784,
            classes: 10,
        }
    }

    /// Number of parameters a model of this kind will have.
    pub fn num_params(&self) -> usize {
        match *self {
            ModelKind::SoftmaxRegression { features, classes } => classes * features + classes,
            ModelKind::Mlp {
                features,
                hidden,
                classes,
            } => hidden * features + hidden + classes * hidden + classes,
        }
    }

    /// Instantiates the model with randomly initialized parameters.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> AnyModel {
        match *self {
            ModelKind::SoftmaxRegression { features, classes } => {
                AnyModel::Softmax(SoftmaxRegression::new(features, classes, rng))
            }
            ModelKind::Mlp {
                features,
                hidden,
                classes,
            } => AnyModel::Mlp(Mlp::new(features, hidden, classes, rng)),
        }
    }
}

/// Enum dispatch over the concrete model types, so federated code can store
/// models without generic parameters or trait objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyModel {
    /// Softmax regression variant.
    Softmax(SoftmaxRegression),
    /// MLP variant.
    Mlp(Mlp),
}

impl Model for AnyModel {
    fn num_params(&self) -> usize {
        match self {
            AnyModel::Softmax(m) => m.num_params(),
            AnyModel::Mlp(m) => m.num_params(),
        }
    }

    fn params(&self) -> Vec<f64> {
        match self {
            AnyModel::Softmax(m) => m.params(),
            AnyModel::Mlp(m) => m.params(),
        }
    }

    fn set_params(&mut self, params: &[f64]) {
        match self {
            AnyModel::Softmax(m) => m.set_params(params),
            AnyModel::Mlp(m) => m.set_params(params),
        }
    }

    fn logits(&self, features: &[f64]) -> Vec<f64> {
        match self {
            AnyModel::Softmax(m) => m.logits(features),
            AnyModel::Mlp(m) => m.logits(features),
        }
    }

    fn loss_and_grad(&self, features: &Matrix, labels: &[usize], rows: &[usize]) -> (f64, Vec<f64>) {
        match self {
            AnyModel::Softmax(m) => m.loss_and_grad(features, labels, rows),
            AnyModel::Mlp(m) => m.loss_and_grad(features, labels, rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[-3.0]), 0);
        assert_eq!(argmax(&[0.0, 0.0]), 0);
    }

    #[test]
    fn model_kind_param_counts() {
        assert_eq!(
            ModelKind::SoftmaxRegression {
                features: 784,
                classes: 10
            }
            .num_params(),
            7850
        );
        assert_eq!(
            ModelKind::Mlp {
                features: 784,
                hidden: 32,
                classes: 10
            }
            .num_params(),
            784 * 32 + 32 + 32 * 10 + 10
        );
        assert_eq!(ModelKind::default_mnist().num_params(), 7850);
    }

    #[test]
    fn build_produces_models_with_matching_param_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            ModelKind::SoftmaxRegression {
                features: 20,
                classes: 4,
            },
            ModelKind::Mlp {
                features: 20,
                hidden: 8,
                classes: 4,
            },
        ] {
            let model = kind.build(&mut rng);
            assert_eq!(model.num_params(), kind.num_params());
            assert_eq!(model.params().len(), kind.num_params());
        }
    }

    #[test]
    fn any_model_round_trips_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let kind = ModelKind::SoftmaxRegression {
            features: 6,
            classes: 3,
        };
        let mut model = kind.build(&mut rng);
        let new_params: Vec<f64> = (0..model.num_params()).map(|i| i as f64 * 0.01).collect();
        model.set_params(&new_params);
        assert_eq!(model.params(), new_params);
    }

    #[test]
    fn model_kind_serde_round_trip() {
        let kind = ModelKind::Mlp {
            features: 10,
            hidden: 4,
            classes: 3,
        };
        let json = serde_json::to_string(&kind).unwrap();
        let back: ModelKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, kind);
    }
}
