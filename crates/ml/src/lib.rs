//! # bfl-ml
//!
//! Learning substrate for the FAIR-BFL reproduction: dense linear algebra,
//! classification models, losses, and the mini-batch SGD loop that each
//! federated client runs locally (paper Procedure-I / Equation 3).
//!
//! The paper's evaluation trains an unspecified "local model" on MNIST; this
//! crate provides two reference models of the right scale — multinomial
//! softmax regression ([`linear::SoftmaxRegression`]) and a one-hidden-layer
//! MLP ([`mlp::Mlp`]) — over a small, BLAS-free batched GEMM kernel set
//! ([`tensor`]). Whole minibatches and evaluation sets move through
//! cache-blocked matrix-matrix kernels that parallelize over output row
//! blocks ([`par`]), with a reusable [`tensor::Scratch`] workspace keeping
//! the hot loops allocation-free; the original per-sample implementations
//! are retained as reference paths behind [`engine::set_reference_mode`]
//! for equivalence tests and speedup measurements. On hosts with
//! AVX2+FMA the GEMM family additionally dispatches to a hand-written
//! vector tier ([`simd`]) that reproduces the scalar kernels
//! bit-for-bit (`BFL_SIMD=off` pins the scalar tier).
//!
//! The quantity clients upload in FAIR-BFL (the "gradient" `w^i_{r+1}` of
//! Algorithm 1) is the *updated parameter vector* after `E` local epochs,
//! exactly as in FedAvg; [`gradient`] provides the flat-vector utilities
//! (cosine distance, norms, weighted averaging) that the aggregation and
//! contribution-identification machinery in `bfl-core` builds on.

#![warn(missing_docs)]

pub mod activation;
pub mod engine;
pub mod gradient;
pub mod init;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod optimizer;
pub mod par;
pub mod simd;
pub mod tensor;

pub use gradient::GradientVector;
pub use linear::SoftmaxRegression;
pub use metrics::{accuracy, confusion_matrix};
pub use mlp::Mlp;
pub use model::{Model, ModelKind};
pub use optimizer::{LocalTrainingConfig, Sgd};
pub use tensor::{Matrix, Scratch, Vector};
