//! Dense vectors, row-major matrices, and the batched compute kernels
//! every model in the workspace runs on.
//!
//! # Kernel layer
//!
//! Three matrix-matrix kernels cover every shape the training and
//! evaluation engines need:
//!
//! * [`matmul_into`] — `C = A · B`, in `i`/`k`/`j` loop order. The inner
//!   `j` loop is a pure `c[j] += a_ik * b[j]` stream with no reduction
//!   dependency, so it auto-vectorizes; the `k` loop is blocked
//!   ([`K_BLOCK`]) so the touched panel of `B` stays cache-resident for
//!   large inner dimensions.
//! * [`matmul_transpose_a_into`] — `C = Aᵀ · B`, the gradient kernel
//!   (`grad_W = δᵀ · X`). Accumulation over `k` runs in ascending order,
//!   which keeps the batched gradients numerically aligned with the
//!   per-sample reference path (same summation order per output element).
//! * [`matmul_transpose_b_into`] — `C = A · Bᵀ`, the Gram kernel used
//!   for logits against row-major weights and for cosine-distance
//!   matrices. The `j` loop is unrolled four wide so four independent
//!   dot-product accumulators hide the floating-point add latency that
//!   makes one-at-a-time `dot` calls latency-bound.
//!
//! Each kernel has a slice-level core ([`gemm_nn`], [`gemm_tn`],
//! [`gemm_nt`]) taking raw row-major buffers plus dimensions, so models
//! can point operands directly at windows of their flat parameter
//! vector — logits and weight gradients run against the parameters in
//! place, with no per-step transpose or copy. All three parallelize over
//! contiguous blocks of output rows via [`crate::par::par_rows_mut`];
//! each worker owns a disjoint slice of `C`, so results are
//! bit-identical regardless of thread count.
//!
//! # Scratch workspace
//!
//! [`Scratch`] owns every intermediate buffer a batched forward/backward
//! pass needs (packed minibatch, logits, deltas, hidden activations,
//! prediction buffer). Buffers are resized with
//! [`Matrix::resize_in_place`], which reuses the underlying allocation,
//! so a training loop that threads one `Scratch` through all of its
//! epochs allocates only on the first minibatch and runs allocation-free
//! afterwards. Each rayon-style worker in the client-parallel loops
//! builds one `Scratch` and reuses it for every client in its chunk.

use crate::par;
use crate::simd;
use serde::{Deserialize, Serialize};

/// A dense vector of `f64` values.
pub type Vector = Vec<f64>;

/// Inner-dimension block size for [`matmul_into`]: 256 `f64`s (2 KiB per
/// row of the `B` panel) keeps the working set inside L1/L2 for the
/// matrix shapes the models produce.
pub const K_BLOCK: usize = 256;

/// Minimum number of output rows each GEMM worker thread must receive
/// before the kernels fan out; below this the spawn overhead dominates.
const MIN_ROWS_PER_THREAD: usize = 32;

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage of length `rows * cols`.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data; panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a list of equal-length rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Reshapes in place to `rows x cols`, zero-filled, reusing the
    /// existing allocation whenever its capacity suffices.
    pub fn resize_in_place(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns the element at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the element at (`row`, `col`).
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        debug_assert!(row < self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        debug_assert!(row < self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Builds a new matrix containing the selected rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Packs the selected rows into `out` (reusing its allocation) — the
    /// minibatch gather of the batched training path.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
    }

    /// Transposes `self` into `out` (reusing its allocation).
    pub fn transpose_into(&self, out: &mut Matrix) {
        transpose_slice_into(&self.data, self.rows, self.cols, out);
    }

    /// Matrix-vector product `self * x` (parallel over row blocks).
    pub fn matvec(&self, x: &[f64]) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        if self.cols == 0 {
            return out;
        }
        par::par_rows_mut(&mut out, 1, 64, |row_start, chunk| {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = dot(self.row(row_start + offset), x);
            }
        });
        out
    }

    /// Matrix-transpose-vector product `selfᵀ * y`.
    pub fn matvec_transpose(&self, y: &[f64]) -> Vector {
        assert_eq!(y.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &coeff) in y.iter().enumerate() {
            if coeff == 0.0 {
                continue;
            }
            axpy(coeff, self.row(r), &mut out);
        }
        out
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Transposes a row-major `rows x cols` buffer into `out` (`cols x
/// rows`), reusing `out`'s allocation. Models use this to stage their
/// row-major weight windows in the layout [`gemm_nn`]'s vectorizable
/// inner loop wants.
pub fn transpose_slice_into(src: &[f64], rows: usize, cols: usize, out: &mut Matrix) {
    debug_assert_eq!(src.len(), rows * cols);
    out.rows = cols;
    out.cols = rows;
    // No clear(): every element is overwritten below.
    out.data.resize(rows * cols, 0.0);
    for r in 0..rows {
        for (c, &v) in src[r * cols..(r + 1) * cols].iter().enumerate() {
            out.data[c * rows + r] = v;
        }
    }
}

/// `C = A · B`. Allocating front-end for [`matmul_into`].
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_into(a, b, &mut c);
    c
}

/// `C = A · B` with `C` reusing its allocation.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(
        a.cols, b.rows,
        "matmul dimension mismatch: {}x{} * {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    c.resize_in_place(a.rows, b.cols);
    gemm_nn(&a.data, &b.data, &mut c.data, a.rows, a.cols, b.cols);
}

/// Slice-level `C = A · B` over row-major buffers (`A: m x k`,
/// `B: k x n`, `C: m x n`, `C` pre-zeroed).
///
/// Blocked `i`/`k`/`j` kernel: for each output row, the contribution of
/// one `A` element is an axpy over a `B` row, so the innermost loop is a
/// dependency-free vectorizable stream. `k` is tiled by [`K_BLOCK`].
/// The slice form exists so models can point `A`/`B` at windows of their
/// flat parameter vector without copying into a [`Matrix`].
pub fn gemm_nn(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if par::plan_workers(m, MIN_ROWS_PER_THREAD) <= 1 {
        gemm_nn_serial(a, b, c, 0, k, n);
    } else {
        par::par_rows_mut(c, n, MIN_ROWS_PER_THREAD, |row_start, chunk| {
            gemm_nn_serial(a, b, chunk, row_start, k, n);
        });
    }
}

/// Serial core of [`gemm_nn`] over one contiguous block of output rows
/// (`chunk` holds the rows starting at `row_start`).
fn gemm_nn_serial(a: &[f64], b: &[f64], chunk: &mut [f64], row_start: usize, k: usize, n: usize) {
    for (offset, c_row) in chunk.chunks_mut(n).enumerate() {
        let a_row = &a[(row_start + offset) * k..(row_start + offset + 1) * k];
        for k_start in (0..k).step_by(K_BLOCK) {
            let k_end = (k_start + K_BLOCK).min(k);
            for (kk, &a_ik) in a_row[k_start..k_end].iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b[(k_start + kk) * n..(k_start + kk + 1) * n];
                axpy(a_ik, b_row, c_row);
            }
        }
    }
}

/// `C = Aᵀ · B`. Allocating front-end for [`matmul_transpose_a_into`].
pub fn matmul_transpose_a(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_transpose_a_into(a, b, &mut c);
    c
}

/// `C = Aᵀ · B` with `C` reusing its allocation — the gradient kernel
/// (`grad_W = δᵀ · X` with `δ` as `A` and the packed minibatch as `B`).
pub fn matmul_transpose_a_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(
        a.rows, b.rows,
        "matmul_transpose_a dimension mismatch: ({}x{})ᵀ * {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    c.resize_in_place(a.cols, b.cols);
    gemm_tn(&a.data, &b.data, &mut c.data, a.rows, a.cols, b.cols);
}

/// Slice-level `C = Aᵀ · B` over row-major buffers (`A: k x m`,
/// `B: k x n`, `C: m x n`, `C` pre-zeroed).
///
/// The `k` (sample) loop is outermost so each `B` row is loaded once and
/// scattered into every output row it contributes to while hot — the
/// same locality the per-sample reference gets by construction. Every
/// output element still accumulates over `k` in ascending order,
/// matching the reference summation order exactly — the equivalence
/// tests rely on this.
pub fn gemm_tn(a: &[f64], b: &[f64], c: &mut [f64], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if par::plan_workers(m, MIN_ROWS_PER_THREAD) <= 1 {
        gemm_tn_serial::<true>(a, b, c, 0, k, m, n);
    } else {
        par::par_rows_mut(c, n, MIN_ROWS_PER_THREAD, |row_start, chunk| {
            gemm_tn_serial::<true>(a, b, chunk, row_start, k, m, n);
        });
    }
}

/// Indexed-row Gram kernel: `C[i][j] = <features.row(rows[i]), B.row(j)>`
/// with `B` a row-major `n x k` window. The selected feature rows are
/// read in place — the minibatch is never gathered into a contiguous
/// copy. Same dot routine and `k`-blocking as [`gemm_nt`], so results
/// match a gather-then-`gemm_nt` exactly.
pub fn gemm_nt_indexed(features: &Matrix, rows: &[usize], b: &[f64], c: &mut [f64], n: usize) {
    let k = features.cols;
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), rows.len() * n);
    if rows.is_empty() || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    gemm_nt_core(|r| features.row(rows[r]), rows.len(), b, c, k, n);
}

/// Indexed-row store-mode gradient kernel:
/// `C = Aᵀ · X[rows]` (`A: B x m` coefficients, `X[rows]`: the selected
/// feature rows read in place, `C: m x k` overwritten). The `k` (sample)
/// contributions accumulate in ascending order like [`gemm_tn`].
pub fn gemm_tn_indexed_overwrite(
    a: &[f64],
    features: &Matrix,
    rows: &[usize],
    c: &mut [f64],
    m: usize,
) {
    let n = features.cols;
    let k = rows.len();
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    gemm_tn_indexed_serial(a, features, rows, c, 0, m, n);
}

/// Serial core of [`gemm_tn_indexed_overwrite`]: the one shared
/// [`gemm_tn_body`] register tile with indexed `B` rows.
fn gemm_tn_indexed_serial(
    a: &[f64],
    features: &Matrix,
    rows: &[usize],
    chunk: &mut [f64],
    row_start: usize,
    m: usize,
    n: usize,
) {
    gemm_tn_body::<false>(
        a,
        |kk| features.row(rows[kk]),
        chunk,
        row_start,
        rows.len(),
        m,
        n,
    );
}

/// Store-mode variant of [`gemm_tn`]: `C = Aᵀ · B`, overwriting `C`
/// without reading it first — callers reusing a gradient buffer skip
/// zeroing it between steps.
pub fn gemm_tn_overwrite(a: &[f64], b: &[f64], c: &mut [f64], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    if par::plan_workers(m, MIN_ROWS_PER_THREAD) <= 1 {
        gemm_tn_serial::<false>(a, b, c, 0, k, m, n);
    } else {
        par::par_rows_mut(c, n, MIN_ROWS_PER_THREAD, |row_start, chunk| {
            gemm_tn_serial::<false>(a, b, chunk, row_start, k, m, n);
        });
    }
}

/// Serial core of [`gemm_tn`] over one contiguous block of output rows:
/// the shared [`gemm_tn_body`] with contiguous `B` rows.
fn gemm_tn_serial<const ACCUMULATE: bool>(
    a: &[f64],
    b: &[f64],
    chunk: &mut [f64],
    row_start: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    gemm_tn_body::<ACCUMULATE>(a, |kk| &b[kk * n..(kk + 1) * n], chunk, row_start, k, m, n);
}

/// The one `C = Aᵀ · B` register-tile body, generic over `ACCUMULATE`
/// (load-add-store vs overwrite) and over how `B` rows are fetched — a
/// contiguous buffer for [`gemm_tn`]/[`gemm_tn_overwrite`], dataset row
/// indices for [`gemm_tn_indexed_overwrite`]. Collapsing the three
/// near-identical serial bodies into this single path means the AVX2
/// tier ([`simd::gemm_tn`], dispatched here) has exactly one scalar
/// tail to mirror.
///
/// Register-tiled: four output rows advance together through `j` in
/// [`LANES`]-wide vectors, with the full `k` (sample) dimension fused
/// into one pass — each output element is loaded (when `ACCUMULATE`)
/// and stored exactly once, instead of once per sample. Every element
/// accumulates its `k` contributions in ascending order, matching the
/// per-sample reference summation order.
fn gemm_tn_body<'a, const ACCUMULATE: bool>(
    a: &[f64],
    b_row: impl Fn(usize) -> &'a [f64],
    chunk: &mut [f64],
    row_start: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd::active() {
        // SAFETY: `simd::active()` guarantees AVX2+FMA were detected.
        unsafe { simd::gemm_tn::<ACCUMULATE>(a, &b_row, chunk, row_start, k, m, n) };
        return;
    }
    let rows = chunk.len() / n;
    let mut r = 0;
    while r + 4 <= rows {
        let base = row_start + r;
        let sub = &mut chunk[r * n..(r + 4) * n];
        let (c0, rest) = sub.split_at_mut(n);
        let (c1, rest) = rest.split_at_mut(n);
        let (c2, c3) = rest.split_at_mut(n);
        let mut j = 0;
        while j + LANES <= n {
            let load = |row: &[f64]| -> [f64; LANES] {
                if ACCUMULATE {
                    row[j..j + LANES].try_into().unwrap()
                } else {
                    [0.0; LANES]
                }
            };
            let mut acc0 = load(c0);
            let mut acc1 = load(c1);
            let mut acc2 = load(c2);
            let mut acc3 = load(c3);
            for kk in 0..k {
                let bv: &[f64; LANES] = b_row(kk)[j..j + LANES].try_into().unwrap();
                let a_col = &a[kk * m + base..kk * m + base + 4];
                for l in 0..LANES {
                    acc0[l] = a_col[0].mul_add(bv[l], acc0[l]);
                    acc1[l] = a_col[1].mul_add(bv[l], acc1[l]);
                    acc2[l] = a_col[2].mul_add(bv[l], acc2[l]);
                    acc3[l] = a_col[3].mul_add(bv[l], acc3[l]);
                }
            }
            c0[j..j + LANES].copy_from_slice(&acc0);
            c1[j..j + LANES].copy_from_slice(&acc1);
            c2[j..j + LANES].copy_from_slice(&acc2);
            c3[j..j + LANES].copy_from_slice(&acc3);
            j += LANES;
        }
        while j < n {
            let init = |row: &[f64]| if ACCUMULATE { row[j] } else { 0.0 };
            let mut s0 = init(c0);
            let mut s1 = init(c1);
            let mut s2 = init(c2);
            let mut s3 = init(c3);
            for kk in 0..k {
                let b_j = b_row(kk)[j];
                let a_col = &a[kk * m + base..kk * m + base + 4];
                s0 += a_col[0] * b_j;
                s1 += a_col[1] * b_j;
                s2 += a_col[2] * b_j;
                s3 += a_col[3] * b_j;
            }
            c0[j] = s0;
            c1[j] = s1;
            c2[j] = s2;
            c3[j] = s3;
            j += 1;
        }
        r += 4;
    }
    // Remainder rows, one at a time with the same full-`k` fusion.
    while r < rows {
        let i = row_start + r;
        let c_row = &mut chunk[r * n..(r + 1) * n];
        let mut j = 0;
        while j + LANES <= n {
            let mut acc: [f64; LANES] = if ACCUMULATE {
                c_row[j..j + LANES].try_into().unwrap()
            } else {
                [0.0; LANES]
            };
            for kk in 0..k {
                let bv: &[f64; LANES] = b_row(kk)[j..j + LANES].try_into().unwrap();
                let a_ki = a[kk * m + i];
                for l in 0..LANES {
                    acc[l] = a_ki.mul_add(bv[l], acc[l]);
                }
            }
            c_row[j..j + LANES].copy_from_slice(&acc);
            j += LANES;
        }
        while j < n {
            let mut s = if ACCUMULATE { c_row[j] } else { 0.0 };
            for kk in 0..k {
                s += a[kk * m + i] * b_row(kk)[j];
            }
            c_row[j] = s;
            j += 1;
        }
        r += 1;
    }
}

/// `C = A · Bᵀ`. Allocating front-end for [`matmul_transpose_b_into`].
pub fn matmul_transpose_b(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_transpose_b_into(a, b, &mut c);
    c
}

/// `C = A · Bᵀ` with `C` reusing its allocation — the Gram kernel
/// (`C[i][j] = ⟨A.row(i), B.row(j)⟩`).
pub fn matmul_transpose_b_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(
        a.cols, b.cols,
        "matmul_transpose_b dimension mismatch: {}x{} * ({}x{})ᵀ",
        a.rows, a.cols, b.rows, b.cols
    );
    c.resize_in_place(a.rows, b.rows);
    gemm_nt(&a.data, &b.data, &mut c.data, a.rows, a.cols, b.rows);
}

/// Slice-level `C = A · Bᵀ` over row-major buffers (`A: m x k`,
/// `B: n x k`, `C: m x n`).
///
/// Four output columns are produced per pass over `A.row(i)`, giving
/// four independent accumulator chains; a lone dot product is bound by
/// the floating-point add latency instead. The slice form lets models
/// point `B` at the weight window of their flat parameter vector, so
/// logits need no per-step weight transpose or copy.
pub fn gemm_nt(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if par::plan_workers(m, MIN_ROWS_PER_THREAD) <= 1 {
        gemm_nt_serial(a, b, c, 0, k, n);
    } else {
        par::par_rows_mut(c, n, MIN_ROWS_PER_THREAD, |row_start, chunk| {
            gemm_nt_serial(a, b, chunk, row_start, k, n);
        });
    }
}

/// SIMD lane width of one accumulator vector in the dot kernels: 8
/// doubles is one AVX-512 register (or two AVX2 registers).
pub(crate) const LANES: usize = 8;

/// Accumulator stripe of the dot kernels: four [`LANES`]-wide vectors
/// advance in parallel, giving four independent FMA chains — enough to
/// hide the floating-point latency that serializes a plain [`dot`].
pub(crate) const STRIPE: usize = 4 * LANES;

/// Lane-striped dot product: deterministic (fixed stripe layout, fixed
/// reduction order) and auto-vectorizable. All Gram entries produced by
/// [`gemm_nt`] go through this one routine, so identical input rows
/// yield bit-identical entries — the Euclidean-from-Gram cancellation
/// depends on this. Dispatches to the hand-written AVX2+FMA form when
/// [`simd::active`]; both tiers run the identical stripe/fold/tail
/// order, so the result is the same bit pattern either way.
#[inline]
pub(crate) fn dot_lanes(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if simd::active() {
        // SAFETY: `simd::active()` guarantees AVX2+FMA were detected.
        return unsafe { simd::dot(a, b) };
    }
    dot_lanes_scalar(a, b)
}

/// Scalar tier of [`dot_lanes`] — the frozen accumulation-order
/// reference every vector form must reproduce bit-for-bit. Kept
/// callable on every architecture (the equivalence suite exercises it
/// through the dispatching GEMM entry points by pinning the tier)
/// rather than folded into the dispatching wrapper.
#[inline]
pub(crate) fn dot_lanes_scalar(a: &[f64], b: &[f64]) -> f64 {
    let len = a.len();
    let mut acc = [0.0f64; STRIPE];
    let mut i = 0;
    while i + STRIPE <= len {
        let av: &[f64; STRIPE] = a[i..i + STRIPE].try_into().unwrap();
        let bv: &[f64; STRIPE] = b[i..i + STRIPE].try_into().unwrap();
        for l in 0..STRIPE {
            acc[l] = av[l].mul_add(bv[l], acc[l]);
        }
        i += STRIPE;
    }
    // Fold the stripe into one vector, then reduce it left-to-right.
    let mut folded = [0.0f64; LANES];
    for (l, value) in acc.iter().enumerate() {
        folded[l % LANES] += value;
    }
    while i + LANES <= len {
        let av: &[f64; LANES] = a[i..i + LANES].try_into().unwrap();
        let bv: &[f64; LANES] = b[i..i + LANES].try_into().unwrap();
        for l in 0..LANES {
            folded[l] = av[l].mul_add(bv[l], folded[l]);
        }
        i += LANES;
    }
    let mut out: f64 = folded.iter().sum();
    while i < len {
        out += a[i] * b[i];
        i += 1;
    }
    out
}

/// `k`-block size of the small-row [`gemm_nt`] path: two `16 x 128`
/// operand tiles (16 KiB each) fit L1 together.
pub(crate) const NT_K_BLOCK: usize = 128;

/// Serial core of [`gemm_nt`] over one contiguous block of output rows.
fn gemm_nt_serial(a: &[f64], b: &[f64], chunk: &mut [f64], row_start: usize, k: usize, n: usize) {
    let rows = chunk.len() / n;
    gemm_nt_core(
        |r| &a[(row_start + r) * k..(row_start + r + 1) * k],
        rows,
        b,
        chunk,
        k,
        n,
    );
}

/// Shared `A · Bᵀ` core, generic over how `A` rows are fetched (a
/// contiguous buffer for [`gemm_nt`], dataset row indices for
/// [`gemm_nt_indexed`] — both produce identical results).
///
/// Two regimes:
/// * **Small row blocks** (minibatch logits): both operands are walked
///   in `[rows x NT_K_BLOCK]` tiles that stay L1-resident together, so
///   each operand is read from L2 exactly once per call instead of once
///   per output row — training throughput is then insensitive to L2/L3
///   bandwidth contention.
/// * **Large row blocks** (evaluation, Gram matrices): one lane-striped
///   dot product per output element; the `B` panel stays cache-resident
///   across rows and `A` streams once.
///
/// Every output element accumulates `k`-blocks in ascending order and
/// each partial is a [`dot_lanes`] reduction, so results are
/// deterministic and identical input rows yield identical outputs.
fn gemm_nt_core<'a>(
    a_row: impl Fn(usize) -> &'a [f64],
    rows: usize,
    b: &[f64],
    c: &mut [f64],
    k: usize,
    n: usize,
) {
    if rows <= 16 && n <= 32 && k > 2 * NT_K_BLOCK {
        #[cfg(target_arch = "x86_64")]
        if simd::active() {
            // SAFETY: `simd::active()` guarantees AVX2+FMA were detected.
            unsafe { simd::gemm_nt_small(&a_row, b, c, k, n) };
            return;
        }
        let mut k0 = 0;
        while k0 < k {
            let k_end = (k0 + NT_K_BLOCK).min(k);
            for (offset, c_row) in c.chunks_mut(n).enumerate() {
                let a_blk = &a_row(offset)[k0..k_end];
                for (j, c_j) in c_row.iter_mut().enumerate() {
                    let partial = dot_lanes(a_blk, &b[j * k + k0..j * k + k_end]);
                    if k0 == 0 {
                        *c_j = partial;
                    } else {
                        *c_j += partial;
                    }
                }
            }
            k0 = k_end;
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if simd::active() {
        // SAFETY: `simd::active()` guarantees AVX2+FMA were detected.
        unsafe { simd::gemm_nt_large(&a_row, rows, b, c, k, n) };
        return;
    }
    for (offset, c_row) in c.chunks_mut(n).enumerate() {
        let row = a_row(offset);
        for (j, c_j) in c_row.iter_mut().enumerate() {
            *c_j = dot_lanes(row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Reusable buffers for the batched training/evaluation engine. See the
/// module docs for the design; build one per worker and thread it
/// through every batched call the worker makes.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Packed minibatch rows (`B x features`).
    pub x: Matrix,
    /// Logits (`B x classes`).
    pub z: Matrix,
    /// Loss gradient with respect to the logits (`B x classes`).
    pub delta: Matrix,
    /// Hidden pre-activations (`B x hidden`, MLP only).
    pub h_pre: Matrix,
    /// Hidden activations (`B x hidden`, MLP only).
    pub h: Matrix,
    /// Gradient flowing back into the hidden layer (`B x hidden`).
    pub g_h: Matrix,
    /// Predicted class per batch row.
    pub predictions: Vec<usize>,
}

impl Scratch {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Default empty `Matrix` (used by `Scratch::default`).
impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// In-place AXPY: `y += alpha * x` — the [`gemm_nn`] inner stream and
/// the SGD update (`params -= lr * grad`). Element-wise multiply *then*
/// add (two roundings, deliberately not fused); the AVX2 tier keeps
/// that shape with `vmulpd` + `vaddpd`, so both tiers agree bit-for-bit
/// on every element.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if simd::active() {
        // SAFETY: `simd::active()` guarantees AVX2+FMA were detected.
        unsafe { simd::axpy(alpha, x, y) };
        return;
    }
    axpy_scalar(alpha, x, y);
}

/// Scalar tier of [`axpy`].
#[inline]
pub(crate) fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean (L2) norm.
pub fn l2_norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Element-wise subtraction `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vector {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise addition `a + b` into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vector {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_from_vec() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows, 2);
        assert_eq!(z.cols, 3);
        assert!(z.data.iter().all(|&v| v == 0.0));

        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_and_row_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.rows, 3);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let mut m = m;
        m.row_mut(2)[0] = 50.0;
        assert_eq!(m.get(2, 0), 50.0);
        m.set(0, 0, 9.0);
        assert_eq!(m.get(0, 0), 9.0);
        assert_eq!(Matrix::from_rows(&[]).rows, 0);
    }

    #[test]
    fn select_rows_reorders() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows, 2);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn select_rows_into_reuses_allocation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut out = Matrix::zeros(0, 0);
        m.select_rows_into(&[1, 2], &mut out);
        assert_eq!(out.rows, 2);
        assert_eq!(out.row(0), &[3.0, 4.0]);
        let capacity = out.data.capacity();
        m.select_rows_into(&[0], &mut out);
        assert_eq!(out.rows, 1);
        assert_eq!(out.row(0), &[1.0, 2.0]);
        assert_eq!(out.data.capacity(), capacity, "no reallocation expected");
    }

    #[test]
    fn matvec_small_example() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.matvec_transpose(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn matvec_many_rows_matches_sequential() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|r| (0..8).map(|c| (r * 8 + c) as f64).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let par = m.matvec(&x);
        let seq: Vec<f64> = (0..m.rows).map(|r| dot(m.row(r), &x)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn blas_like_helpers() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        let mut x = vec![2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(add(&[3.0, 4.0], &[1.0, 1.0]), vec![4.0, 5.0]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    /// Naive triple loop used as the oracle for the blocked kernels.
    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for j in 0..b.cols {
                let mut sum = 0.0;
                for k in 0..a.cols {
                    sum += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, sum);
            }
        }
        c
    }

    fn assert_close(a: &Matrix, b: &Matrix, tolerance: f64) {
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.cols, b.cols);
        for (x, y) in a.data.iter().zip(b.data.iter()) {
            assert!((x - y).abs() < tolerance, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_on_non_square_shapes() {
        for (m, k, n, seed) in [(3, 5, 7, 1), (1, 9, 4, 2), (8, 1, 3, 3), (13, 300, 5, 4)] {
            let a = deterministic_matrix(m, k, seed);
            let b = deterministic_matrix(k, n, seed + 100);
            assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-12);
        }
    }

    #[test]
    fn matmul_transpose_a_matches_explicit_transpose() {
        for (m, k, n, seed) in [(4, 6, 3, 5), (1, 5, 5, 6), (10, 2, 9, 7)] {
            let a = deterministic_matrix(k, m, seed);
            let b = deterministic_matrix(k, n, seed + 200);
            let mut at = Matrix::zeros(0, 0);
            a.transpose_into(&mut at);
            assert_close(&matmul_transpose_a(&a, &b), &matmul_naive(&at, &b), 1e-12);
        }
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        // Sizes straddle the 4-wide unroll boundary (n = 1, 4, 5, 11).
        for (m, k, n, seed) in [(3, 7, 1, 8), (2, 9, 4, 9), (6, 3, 5, 10), (5, 300, 11, 11)] {
            let a = deterministic_matrix(m, k, seed);
            let b = deterministic_matrix(n, k, seed + 300);
            let mut bt = Matrix::zeros(0, 0);
            b.transpose_into(&mut bt);
            assert_close(&matmul_transpose_b(&a, &b), &matmul_naive(&a, &bt), 1e-12);
        }
    }

    #[test]
    fn gemm_kernels_handle_empty_and_degenerate_shapes() {
        let empty = Matrix::zeros(0, 0);
        let c = matmul(&empty, &empty);
        assert_eq!((c.rows, c.cols), (0, 0));

        // Empty inner dimension: the result is a zero matrix.
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!((c.rows, c.cols), (3, 4));
        assert!(c.data.iter().all(|&v| v == 0.0));

        // Single row times single column.
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(3, 1, vec![4.0, 5.0, 6.0]);
        let c = matmul(&a, &b);
        assert_eq!((c.rows, c.cols), (1, 1));
        assert!((c.get(0, 0) - 32.0).abs() < 1e-12);

        // Transpose kernels on empty inputs.
        let c = matmul_transpose_a(&Matrix::zeros(0, 2), &Matrix::zeros(0, 3));
        assert_eq!((c.rows, c.cols), (2, 3));
        assert!(c.data.iter().all(|&v| v == 0.0));
        let c = matmul_transpose_b(&Matrix::zeros(0, 5), &Matrix::zeros(0, 5));
        assert_eq!((c.rows, c.cols), (0, 0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn into_variants_reuse_allocations() {
        let a = deterministic_matrix(6, 5, 21);
        let b = deterministic_matrix(5, 4, 22);
        let mut c = Matrix::zeros(0, 0);
        matmul_into(&a, &b, &mut c);
        let capacity = c.data.capacity();
        matmul_into(&a, &b, &mut c);
        assert_eq!(c.data.capacity(), capacity);
        assert_close(&c, &matmul_naive(&a, &b), 1e-12);
    }

    #[test]
    fn transpose_round_trip() {
        let m = deterministic_matrix(4, 7, 31);
        let mut t = Matrix::zeros(0, 0);
        let mut back = Matrix::zeros(0, 0);
        m.transpose_into(&mut t);
        t.transpose_into(&mut back);
        assert_eq!(m, back);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matvec_is_linear(rows in 1usize..20, cols in 1usize..20, seed in any::<u64>()) {
            // Build a deterministic pseudo-random matrix and two vectors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let m = Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect());
            let x: Vec<f64> = (0..cols).map(|_| next()).collect();
            let y: Vec<f64> = (0..cols).map(|_| next()).collect();
            let lhs = m.matvec(&add(&x, &y));
            let rhs = add(&m.matvec(&x), &m.matvec(&y));
            for (a, b) in lhs.iter().zip(rhs.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_product_adjoint_identity(rows in 1usize..15, cols in 1usize..15, seed in any::<u64>()) {
            // <A x, y> == <x, Aᵀ y>
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let m = Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect());
            let x: Vec<f64> = (0..cols).map(|_| next()).collect();
            let y: Vec<f64> = (0..rows).map(|_| next()).collect();
            let lhs = dot(&m.matvec(&x), &y);
            let rhs = dot(&x, &m.matvec_transpose(&y));
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }

        #[test]
        fn l2_norm_triangle_inequality(a in proptest::collection::vec(-100.0f64..100.0, 1..32)) {
            let b: Vec<f64> = a.iter().map(|v| v * 0.3 + 1.0).collect();
            prop_assert!(l2_norm(&add(&a, &b)) <= l2_norm(&a) + l2_norm(&b) + 1e-9);
        }

        #[test]
        fn gemm_is_associative_with_vectors(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in any::<u64>()) {
            // (A·B)·x == A·(B·x)
            let a = deterministic_matrix(m, k, seed);
            let b = deterministic_matrix(k, n, seed ^ 0xABCD);
            let mut state = seed ^ 0x1234;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let x: Vec<f64> = (0..n).map(|_| next()).collect();
            let lhs = matmul(&a, &b).matvec(&x);
            let rhs = a.matvec(&b.matvec(&x));
            for (p, q) in lhs.iter().zip(rhs.iter()) {
                prop_assert!((p - q).abs() < 1e-9);
            }
        }
    }
}
