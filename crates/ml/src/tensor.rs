//! Dense vectors and row-major matrices with the handful of kernels the
//! models need: dot products, AXPY updates, matrix-vector and
//! matrix-transpose-vector products, and row access.
//!
//! Matrix-vector products over many rows are parallelized with rayon's
//! parallel iterators; everything else is deliberately simple sequential
//! code — the matrices involved (at most a few thousand rows of 784
//! columns) never justify more machinery.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense vector of `f64` values.
pub type Vector = Vec<f64>;

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage of length `rows * cols`.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data; panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a list of equal-length rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Returns the element at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the element at (`row`, `col`).
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        debug_assert!(row < self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        debug_assert!(row < self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Builds a new matrix containing the selected rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Matrix-vector product `self * x` (parallel over rows).
    pub fn matvec(&self, x: &[f64]) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        if self.rows >= 64 {
            (0..self.rows)
                .into_par_iter()
                .map(|r| dot(self.row(r), x))
                .collect()
        } else {
            (0..self.rows).map(|r| dot(self.row(r), x)).collect()
        }
    }

    /// Matrix-transpose-vector product `selfᵀ * y`.
    pub fn matvec_transpose(&self, y: &[f64]) -> Vector {
        assert_eq!(y.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &coeff) in y.iter().enumerate() {
            if coeff == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += coeff * v;
            }
        }
        out
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// In-place AXPY: `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean (L2) norm.
pub fn l2_norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Element-wise subtraction `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vector {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise addition `a + b` into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vector {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_from_vec() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows, 2);
        assert_eq!(z.cols, 3);
        assert!(z.data.iter().all(|&v| v == 0.0));

        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_and_row_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.rows, 3);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let mut m = m;
        m.row_mut(2)[0] = 50.0;
        assert_eq!(m.get(2, 0), 50.0);
        m.set(0, 0, 9.0);
        assert_eq!(m.get(0, 0), 9.0);
        assert_eq!(Matrix::from_rows(&[]).rows, 0);
    }

    #[test]
    fn select_rows_reorders() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows, 2);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn matvec_small_example() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.matvec_transpose(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn matvec_parallel_path_matches_sequential() {
        // 100 rows exercises the rayon branch.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|r| (0..8).map(|c| (r * 8 + c) as f64).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let par = m.matvec(&x);
        let seq: Vec<f64> = (0..m.rows).map(|r| dot(m.row(r), &x)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn blas_like_helpers() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        let mut x = vec![2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(add(&[3.0, 4.0], &[1.0, 1.0]), vec![4.0, 5.0]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matvec_is_linear(rows in 1usize..20, cols in 1usize..20, seed in any::<u64>()) {
            // Build a deterministic pseudo-random matrix and two vectors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let m = Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect());
            let x: Vec<f64> = (0..cols).map(|_| next()).collect();
            let y: Vec<f64> = (0..cols).map(|_| next()).collect();
            let lhs = m.matvec(&add(&x, &y));
            let rhs = add(&m.matvec(&x), &m.matvec(&y));
            for (a, b) in lhs.iter().zip(rhs.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_product_adjoint_identity(rows in 1usize..15, cols in 1usize..15, seed in any::<u64>()) {
            // <A x, y> == <x, Aᵀ y>
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            };
            let m = Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect());
            let x: Vec<f64> = (0..cols).map(|_| next()).collect();
            let y: Vec<f64> = (0..rows).map(|_| next()).collect();
            let lhs = dot(&m.matvec(&x), &y);
            let rhs = dot(&x, &m.matvec_transpose(&y));
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }

        #[test]
        fn l2_norm_triangle_inequality(a in proptest::collection::vec(-100.0f64..100.0, 1..32)) {
            let b: Vec<f64> = a.iter().map(|v| v * 0.3 + 1.0).collect();
            prop_assert!(l2_norm(&add(&a, &b)) <= l2_norm(&a) + l2_norm(&b) + 1e-9);
        }
    }
}
