//! One-hidden-layer multi-layer perceptron with ReLU activation.
//!
//! A slightly richer alternative to [`crate::SoftmaxRegression`] used to
//! check that the FAIR-BFL machinery (aggregation, clustering, rewards) is
//! agnostic to the local model architecture.

use crate::activation::{relu, relu_derivative};
use crate::loss::{cross_entropy, cross_entropy_grad};
use crate::model::Model;
use crate::tensor::Matrix;
use crate::{init, tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `features -> hidden (ReLU) -> classes (softmax)` network.
///
/// Parameters are stored flat as `[W1, b1, W2, b2]` with `W1` of shape
/// `(hidden x features)` and `W2` of shape `(classes x hidden)`, both
/// row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    features: usize,
    hidden: usize,
    classes: usize,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with Xavier-initialized weights and zero biases.
    pub fn new<R: Rng + ?Sized>(features: usize, hidden: usize, classes: usize, rng: &mut R) -> Self {
        assert!(features > 0 && hidden > 0 && classes > 1);
        let mut params = init::xavier_uniform(rng, features, hidden);
        params.extend(init::zeros(hidden));
        params.extend(init::xavier_uniform(rng, hidden, classes));
        params.extend(init::zeros(classes));
        Mlp {
            features,
            hidden,
            classes,
            params,
        }
    }

    /// Input dimensionality.
    pub fn feature_count(&self) -> usize {
        self.features
    }

    /// Hidden-layer width.
    pub fn hidden_count(&self) -> usize {
        self.hidden
    }

    /// Number of output classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    fn offsets(&self) -> (usize, usize, usize, usize) {
        let w1 = 0;
        let b1 = self.hidden * self.features;
        let w2 = b1 + self.hidden;
        let b2 = w2 + self.classes * self.hidden;
        (w1, b1, w2, b2)
    }

    /// Forward pass returning (hidden pre-activation, hidden activation, logits).
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        debug_assert_eq!(x.len(), self.features);
        let (w1, b1, w2, b2) = self.offsets();
        let mut h_pre = Vec::with_capacity(self.hidden);
        for j in 0..self.hidden {
            let row = &self.params[w1 + j * self.features..w1 + (j + 1) * self.features];
            h_pre.push(tensor::dot(row, x) + self.params[b1 + j]);
        }
        let h = relu(&h_pre);
        let mut logits = Vec::with_capacity(self.classes);
        for c in 0..self.classes {
            let row = &self.params[w2 + c * self.hidden..w2 + (c + 1) * self.hidden];
            logits.push(tensor::dot(row, &h) + self.params[b2 + c]);
        }
        (h_pre, h, logits)
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.hidden * self.features + self.hidden + self.classes * self.hidden + self.classes
    }

    fn params(&self) -> Vec<f64> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    fn logits(&self, features: &[f64]) -> Vec<f64> {
        self.forward(features).2
    }

    fn loss_and_grad(&self, features: &Matrix, labels: &[usize], rows: &[usize]) -> (f64, Vec<f64>) {
        assert_eq!(features.rows, labels.len(), "features/labels length mismatch");
        assert!(!rows.is_empty(), "gradient over an empty batch is undefined");
        let (w1, b1, w2, b2) = self.offsets();
        let mut grad = vec![0.0; self.num_params()];
        let mut total_loss = 0.0;

        for &r in rows {
            let x = features.row(r);
            let label = labels[r];
            let (h_pre, h, logits) = self.forward(x);
            total_loss += cross_entropy(&logits, label);

            // Output layer.
            let g_logits = cross_entropy_grad(&logits, label);
            for (c, &g) in g_logits.iter().enumerate() {
                let w2_grad = &mut grad[w2 + c * self.hidden..w2 + (c + 1) * self.hidden];
                tensor::axpy(g, &h, w2_grad);
                grad[b2 + c] += g;
            }

            // Backpropagate into the hidden layer.
            let mut g_h = vec![0.0; self.hidden];
            for (c, &g) in g_logits.iter().enumerate() {
                let row = &self.params[w2 + c * self.hidden..w2 + (c + 1) * self.hidden];
                tensor::axpy(g, row, &mut g_h);
            }
            let relu_mask = relu_derivative(&h_pre);
            for (gh, mask) in g_h.iter_mut().zip(relu_mask.iter()) {
                *gh *= mask;
            }

            // Input layer.
            for (j, &g) in g_h.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let w1_grad = &mut grad[w1 + j * self.features..w1 + (j + 1) * self.features];
                tensor::axpy(g, x, w1_grad);
                grad[b1 + j] += g;
            }
        }

        let scale = 1.0 / rows.len() as f64;
        tensor::scale(scale, &mut grad);
        (total_loss * scale, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{argmax, dataset_loss};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(6, 4, 3, &mut rng);
        assert_eq!(m.feature_count(), 6);
        assert_eq!(m.hidden_count(), 4);
        assert_eq!(m.class_count(), 3);
        assert_eq!(m.num_params(), 6 * 4 + 4 + 4 * 3 + 3);
        assert_eq!(m.params().len(), m.num_params());
        assert_eq!(m.logits(&[0.0; 6]).len(), 3);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Mlp::new(3, 5, 3, &mut rng);
        let features = Matrix::from_rows(&[
            vec![0.4, -0.3, 0.8],
            vec![-0.6, 0.2, 0.1],
            vec![0.9, 0.9, -0.9],
        ]);
        let labels = vec![0, 1, 2];
        let rows = vec![0, 1, 2];
        let (_, grad) = m.loss_and_grad(&features, &labels, &rows);

        let eps = 1e-6;
        let base = m.params();
        for i in (0..m.num_params()).step_by(5) {
            let mut plus = m.clone();
            let mut p = base.clone();
            p[i] += eps;
            plus.set_params(&p);
            let mut minus = m.clone();
            let mut p = base.clone();
            p[i] -= eps;
            minus.set_params(&p);
            let numeric = (dataset_loss(&plus, &features, &labels)
                - dataset_loss(&minus, &features, &labels))
                / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-5,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn learns_xor_like_pattern_that_linear_models_cannot() {
        // XOR in 2D: requires the hidden layer.
        let features = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let labels = vec![0usize, 1, 1, 0];
        let rows: Vec<usize> = (0..4).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Mlp::new(2, 8, 2, &mut rng);
        for _ in 0..3000 {
            let (_, grad) = m.loss_and_grad(&features, &labels, &rows);
            let mut p = m.params();
            tensor::axpy(-0.5, &grad, &mut p);
            m.set_params(&p);
        }
        let correct = rows
            .iter()
            .filter(|&&r| argmax(&m.logits(features.row(r))) == labels[r])
            .count();
        assert_eq!(correct, 4, "MLP should fit XOR exactly");
    }

    #[test]
    fn params_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = Mlp::new(4, 3, 2, &mut rng);
        let target: Vec<f64> = (0..m.num_params()).map(|i| (i as f64) * 0.1).collect();
        m.set_params(&target);
        assert_eq!(m.params(), target);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Mlp::new(4, 3, 2, &mut rng);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        // JSON rendering of f64 can lose the last bit; compare with tolerance.
        assert_eq!(back.num_params(), m.num_params());
        for (a, b) in back.params().iter().zip(m.params().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
