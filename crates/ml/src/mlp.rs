//! One-hidden-layer multi-layer perceptron with ReLU activation.
//!
//! A slightly richer alternative to [`crate::SoftmaxRegression`] used to
//! check that the FAIR-BFL machinery (aggregation, clustering, rewards) is
//! agnostic to the local model architecture.

use crate::activation::{relu, relu_derivative, softmax_in_place};
use crate::loss::{cross_entropy, cross_entropy_grad};
use crate::model::Model;
use crate::tensor::{Matrix, Scratch};
use crate::{init, tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// `features -> hidden (ReLU) -> classes (softmax)` network.
///
/// Parameters are stored flat as `[W1, b1, W2, b2]` with `W1` of shape
/// `(hidden x features)` and `W2` of shape `(classes x hidden)`, both
/// row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    features: usize,
    hidden: usize,
    classes: usize,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with Xavier-initialized weights and zero biases.
    pub fn new<R: Rng + ?Sized>(
        features: usize,
        hidden: usize,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(features > 0 && hidden > 0 && classes > 1);
        let mut params = init::xavier_uniform(rng, features, hidden);
        params.extend(init::zeros(hidden));
        params.extend(init::xavier_uniform(rng, hidden, classes));
        params.extend(init::zeros(classes));
        Mlp {
            features,
            hidden,
            classes,
            params,
        }
    }

    /// Input dimensionality.
    pub fn feature_count(&self) -> usize {
        self.features
    }

    /// Hidden-layer width.
    pub fn hidden_count(&self) -> usize {
        self.hidden
    }

    /// Number of output classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    fn offsets(&self) -> (usize, usize, usize, usize) {
        let w1 = 0;
        let b1 = self.hidden * self.features;
        let w2 = b1 + self.hidden;
        let b2 = w2 + self.classes * self.hidden;
        (w1, b1, w2, b2)
    }

    /// Forward pass returning (hidden pre-activation, hidden activation, logits).
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        debug_assert_eq!(x.len(), self.features);
        let (w1, b1, w2, b2) = self.offsets();
        let mut h_pre = Vec::with_capacity(self.hidden);
        for j in 0..self.hidden {
            let row = &self.params[w1 + j * self.features..w1 + (j + 1) * self.features];
            h_pre.push(tensor::dot(row, x) + self.params[b1 + j]);
        }
        let h = relu(&h_pre);
        let mut logits = Vec::with_capacity(self.classes);
        for c in 0..self.classes {
            let row = &self.params[w2 + c * self.hidden..w2 + (c + 1) * self.hidden];
            logits.push(tensor::dot(row, &h) + self.params[b2 + c]);
        }
        (h_pre, h, logits)
    }
}

impl Mlp {
    /// Batched forward pass over a borrowed feature block: fills
    /// `scratch.h_pre`, `scratch.h` and `scratch.z`.
    fn forward_block(&self, x: &[f64], batch: usize, scratch: &mut Scratch) {
        debug_assert_eq!(x.len(), batch * self.features);
        let (w1, b1, w2, b2) = self.offsets();

        // h_pre = X · W1ᵀ + b1, straight against the row-major parameter
        // window (the Gram kernel's dot tiles read W1 in place).
        scratch.h_pre.resize_in_place(batch, self.hidden);
        tensor::gemm_nt(
            x,
            &self.params[w1..b1],
            &mut scratch.h_pre.data,
            batch,
            self.features,
            self.hidden,
        );
        let bias1 = &self.params[b1..w2];
        for row in scratch.h_pre.data.chunks_mut(self.hidden) {
            for (v, &b) in row.iter_mut().zip(bias1.iter()) {
                *v += b;
            }
        }

        // h = relu(h_pre), kept separately for the backward mask.
        scratch.h.resize_in_place(batch, self.hidden);
        for (h, &pre) in scratch.h.data.iter_mut().zip(scratch.h_pre.data.iter()) {
            *h = pre.max(0.0);
        }

        // z = h · W2ᵀ + b2.
        scratch.z.resize_in_place(batch, self.classes);
        tensor::gemm_nt(
            &scratch.h.data,
            &self.params[w2..b2],
            &mut scratch.z.data,
            batch,
            self.hidden,
            self.classes,
        );
        let bias2 = &self.params[b2..];
        for row in scratch.z.data.chunks_mut(self.classes) {
            for (v, &b) in row.iter_mut().zip(bias2.iter()) {
                *v += b;
            }
        }
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.hidden * self.features + self.hidden + self.classes * self.hidden + self.classes
    }

    fn params_ref(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    fn logits(&self, features: &[f64]) -> Vec<f64> {
        self.forward(features).2
    }

    fn logits_block(&self, x: &[f64], rows: usize, scratch: &mut Scratch) {
        self.forward_block(x, rows, scratch);
    }

    fn loss_and_sum_grad_batched(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
        grad: &mut Vec<f64>,
        scratch: &mut Scratch,
    ) -> f64 {
        assert_eq!(
            features.rows,
            labels.len(),
            "features/labels length mismatch"
        );
        assert!(
            !rows.is_empty(),
            "gradient over an empty batch is undefined"
        );
        assert_eq!(features.cols, self.features, "feature width mismatch");
        let batch = rows.len();
        let (w1, b1, w2, b2) = self.offsets();

        // Layer 1 runs straight off the dataset rows — no gather copy.
        scratch.h_pre.resize_in_place(batch, self.hidden);
        tensor::gemm_nt_indexed(
            features,
            rows,
            &self.params[w1..b1],
            &mut scratch.h_pre.data,
            self.hidden,
        );
        let bias1 = &self.params[b1..w2];
        for row in scratch.h_pre.data.chunks_mut(self.hidden) {
            for (v, &b) in row.iter_mut().zip(bias1.iter()) {
                *v += b;
            }
        }
        scratch.h.resize_in_place(batch, self.hidden);
        for (h, &pre) in scratch.h.data.iter_mut().zip(scratch.h_pre.data.iter()) {
            *h = pre.max(0.0);
        }
        scratch.z.resize_in_place(batch, self.classes);
        tensor::gemm_nt(
            &scratch.h.data,
            &self.params[w2..b2],
            &mut scratch.z.data,
            batch,
            self.hidden,
            self.classes,
        );
        let bias2 = &self.params[b2..];
        for row in scratch.z.data.chunks_mut(self.classes) {
            for (v, &b) in row.iter_mut().zip(bias2.iter()) {
                *v += b;
            }
        }

        // delta = softmax(z) - one_hot(label), row-wise in place.
        let mut total_loss = 0.0;
        scratch.delta.resize_in_place(batch, self.classes);
        scratch.delta.data.copy_from_slice(&scratch.z.data);
        for (r, &row_index) in rows.iter().enumerate() {
            let delta_row = scratch.delta.row_mut(r);
            softmax_in_place(delta_row);
            let label = labels[row_index];
            total_loss += -(delta_row[label].max(1e-15)).ln();
            delta_row[label] -= 1.0;
        }

        // Weight-gradient windows are written in store mode, so the
        // reused gradient buffer never needs a zeroing pass; only the
        // small bias windows are cleared explicitly.
        grad.resize(self.num_params(), 0.0);
        let (grad_low, grad_high) = grad.split_at_mut(w2);
        let (grad_w1, grad_b1) = grad_low.split_at_mut(b1);
        let (grad_w2, grad_b2) = grad_high.split_at_mut(b2 - w2);

        // Output layer: grad_W2 = δᵀ · h, grad_b2 = column sums of δ.
        tensor::gemm_tn_overwrite(
            &scratch.delta.data,
            &scratch.h.data,
            grad_w2,
            batch,
            self.classes,
            self.hidden,
        );
        grad_b2.fill(0.0);
        for r in 0..batch {
            tensor::axpy(1.0, scratch.delta.row(r), grad_b2);
        }

        // Backpropagate: g_h = δ · W2, masked by relu'(h_pre).
        scratch.g_h.resize_in_place(batch, self.hidden);
        tensor::gemm_nn(
            &scratch.delta.data,
            &self.params[w2..b2],
            &mut scratch.g_h.data,
            batch,
            self.classes,
            self.hidden,
        );
        for (g, &pre) in scratch.g_h.data.iter_mut().zip(scratch.h_pre.data.iter()) {
            if pre <= 0.0 {
                *g = 0.0;
            }
        }

        // Input layer: grad_W1 = g_hᵀ · X, grad_b1 = column sums of g_h.
        tensor::gemm_tn_indexed_overwrite(&scratch.g_h.data, features, rows, grad_w1, self.hidden);
        grad_b1.fill(0.0);
        for r in 0..batch {
            tensor::axpy(1.0, scratch.g_h.row(r), grad_b1);
        }
        total_loss
    }

    fn loss_and_grad_reference(
        &self,
        features: &Matrix,
        labels: &[usize],
        rows: &[usize],
    ) -> (f64, Vec<f64>) {
        assert_eq!(
            features.rows,
            labels.len(),
            "features/labels length mismatch"
        );
        assert!(
            !rows.is_empty(),
            "gradient over an empty batch is undefined"
        );
        let (w1, b1, w2, b2) = self.offsets();
        let mut grad = vec![0.0; self.num_params()];
        let mut total_loss = 0.0;

        for &r in rows {
            let x = features.row(r);
            let label = labels[r];
            let (h_pre, h, logits) = self.forward(x);
            total_loss += cross_entropy(&logits, label);

            // Output layer.
            let g_logits = cross_entropy_grad(&logits, label);
            for (c, &g) in g_logits.iter().enumerate() {
                let w2_grad = &mut grad[w2 + c * self.hidden..w2 + (c + 1) * self.hidden];
                tensor::axpy(g, &h, w2_grad);
                grad[b2 + c] += g;
            }

            // Backpropagate into the hidden layer.
            let mut g_h = vec![0.0; self.hidden];
            for (c, &g) in g_logits.iter().enumerate() {
                let row = &self.params[w2 + c * self.hidden..w2 + (c + 1) * self.hidden];
                tensor::axpy(g, row, &mut g_h);
            }
            let relu_mask = relu_derivative(&h_pre);
            for (gh, mask) in g_h.iter_mut().zip(relu_mask.iter()) {
                *gh *= mask;
            }

            // Input layer.
            for (j, &g) in g_h.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let w1_grad = &mut grad[w1 + j * self.features..w1 + (j + 1) * self.features];
                tensor::axpy(g, x, w1_grad);
                grad[b1 + j] += g;
            }
        }

        let scale = 1.0 / rows.len() as f64;
        tensor::scale(scale, &mut grad);
        (total_loss * scale, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{argmax, dataset_loss};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(6, 4, 3, &mut rng);
        assert_eq!(m.feature_count(), 6);
        assert_eq!(m.hidden_count(), 4);
        assert_eq!(m.class_count(), 3);
        assert_eq!(m.num_params(), 6 * 4 + 4 + 4 * 3 + 3);
        assert_eq!(m.params().len(), m.num_params());
        assert_eq!(m.logits(&[0.0; 6]).len(), 3);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Mlp::new(3, 5, 3, &mut rng);
        let features = Matrix::from_rows(&[
            vec![0.4, -0.3, 0.8],
            vec![-0.6, 0.2, 0.1],
            vec![0.9, 0.9, -0.9],
        ]);
        let labels = vec![0, 1, 2];
        let rows = vec![0, 1, 2];
        let (_, grad) = m.loss_and_grad(&features, &labels, &rows);

        let eps = 1e-6;
        let base = m.params();
        for i in (0..m.num_params()).step_by(5) {
            let mut plus = m.clone();
            let mut p = base.clone();
            p[i] += eps;
            plus.set_params(&p);
            let mut minus = m.clone();
            let mut p = base.clone();
            p[i] -= eps;
            minus.set_params(&p);
            let numeric = (dataset_loss(&plus, &features, &labels)
                - dataset_loss(&minus, &features, &labels))
                / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-5,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn learns_xor_like_pattern_that_linear_models_cannot() {
        // XOR in 2D: requires the hidden layer.
        let features = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let labels = vec![0usize, 1, 1, 0];
        let rows: Vec<usize> = (0..4).collect();
        // Seed chosen so the Xavier draw lands in the XOR-solvable basin
        // (most seeds do; a few start with a dead hidden layer).
        let mut rng = StdRng::seed_from_u64(12);
        let mut m = Mlp::new(2, 8, 2, &mut rng);
        for _ in 0..3000 {
            let (_, grad) = m.loss_and_grad(&features, &labels, &rows);
            let mut p = m.params();
            tensor::axpy(-0.5, &grad, &mut p);
            m.set_params(&p);
        }
        let correct = rows
            .iter()
            .filter(|&&r| argmax(&m.logits(features.row(r))) == labels[r])
            .count();
        assert_eq!(correct, 4, "MLP should fit XOR exactly");
    }

    #[test]
    fn params_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = Mlp::new(4, 3, 2, &mut rng);
        let target: Vec<f64> = (0..m.num_params()).map(|i| (i as f64) * 0.1).collect();
        m.set_params(&target);
        assert_eq!(m.params(), target);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Mlp::new(4, 3, 2, &mut rng);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        // JSON rendering of f64 can lose the last bit; compare with tolerance.
        assert_eq!(back.num_params(), m.num_params());
        for (a, b) in back.params().iter().zip(m.params().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
