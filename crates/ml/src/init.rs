//! Parameter initialization schemes.

use rand::Rng;

/// Uniform Xavier/Glorot initialization for a layer with the given fan-in
/// and fan-out: samples from `U(-limit, limit)` with
/// `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Vec<f64> {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..limit))
        .collect()
}

/// Zero initialization of `len` parameters (used for biases).
pub fn zeros(len: usize) -> Vec<f64> {
    vec![0.0; len]
}

/// Small-scale uniform initialization in `[-scale, scale]`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, len: usize, scale: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-scale..scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit_and_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(&mut rng, 100, 50);
        assert_eq!(w.len(), 5000);
        let limit = (6.0f64 / 150.0).sqrt();
        assert!(w.iter().all(|&v| v.abs() <= limit));
        // Not all identical.
        assert!(w.iter().any(|&v| (v - w[0]).abs() > 1e-12));
    }

    #[test]
    fn zeros_are_zero() {
        assert!(zeros(16).iter().all(|&v| v == 0.0));
        assert_eq!(zeros(0).len(), 0);
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = uniform(&mut rng, 1000, 0.01);
        assert!(w.iter().all(|&v| v.abs() <= 0.01));
    }

    #[test]
    fn seeded_initialization_is_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        assert_eq!(a, b);
    }
}
