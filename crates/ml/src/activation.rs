//! Activation functions and their derivatives.
//!
//! Everything here deliberately stays scalar under the PR 10 SIMD tier
//! ([`crate::simd`]): softmax calls libm's `exp`, whose bit patterns a
//! hand-vectorized polynomial cannot reproduce, and the stabilizing
//! row-max fold uses `f64::max`, whose NaN/±0 semantics differ from
//! `vmaxpd` — either would break the tier's bit-identity contract for a
//! cost that is a rounding error next to the GEMMs feeding it.

/// Rectified linear unit applied element-wise.
pub fn relu(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Derivative of ReLU evaluated at the pre-activation values.
pub fn relu_derivative(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| if v > 0.0 { 1.0 } else { 0.0 }).collect()
}

/// Logistic sigmoid applied element-wise.
pub fn sigmoid(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| 1.0 / (1.0 + (-v).exp())).collect()
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Numerically stable softmax computed in place — the allocation-free
/// form the batched engine applies row-by-row to a logits matrix. The
/// operation sequence matches [`softmax`] exactly, so both paths produce
/// bit-identical probabilities.
pub fn softmax_in_place(values: &mut [f64]) {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in values.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(&[-1.0, 0.0, 2.5]), vec![0.0, 0.0, 2.5]);
        assert_eq!(relu_derivative(&[-1.0, 0.0, 2.5]), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_symmetric() {
        let y = sigmoid(&[-10.0, 0.0, 10.0]);
        assert!(y[0] < 0.001);
        assert!((y[1] - 0.5).abs() < 1e-12);
        assert!(y[2] > 0.999);
        let a = sigmoid(&[2.0])[0];
        let b = sigmoid(&[-2.0])[0];
        assert!((a + b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_matches_known_values() {
        let p = softmax(&[1.0, 1.0, 1.0]);
        for v in &p {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
        let p = softmax(&[1000.0, 0.0]);
        assert!(p[0] > 0.999_999);
    }

    #[test]
    fn softmax_in_place_is_bit_identical_to_softmax() {
        let logits = [0.3, -1.2, 2.0, 0.0, 17.5];
        let reference = softmax(&logits);
        let mut in_place = logits.to_vec();
        softmax_in_place(&mut in_place);
        for (a, b) in reference.iter().zip(in_place.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    proptest! {
        #[test]
        fn softmax_is_a_distribution(logits in proptest::collection::vec(-50.0f64..50.0, 1..20)) {
            let p = softmax(&logits);
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn softmax_is_shift_invariant(logits in proptest::collection::vec(-20.0f64..20.0, 1..10), shift in -5.0f64..5.0) {
            let shifted: Vec<f64> = logits.iter().map(|v| v + shift).collect();
            let a = softmax(&logits);
            let b = softmax(&shifted);
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
