//! Stochastic gradient descent and the local-training loop of Procedure-I.
//!
//! Equation 3 of the paper is plain mini-batch SGD:
//! `w_{r+1} ← w_r − η ∇ℓ(w_r; b)` applied over `E` epochs of batches of
//! size `B`. FedProx (the paper's strongest FL baseline) modifies the local
//! objective with a proximal term `μ/2 ‖w − w_global‖²`, which shows up in
//! the update as an extra `μ (w − w_global)` gradient component; setting
//! `proximal_mu = 0` recovers FedAvg/FAIR-BFL local training.

use crate::model::Model;
use crate::tensor::{self, Matrix, Scratch};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Plain SGD step applier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate η.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an optimizer with the given learning rate.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Sgd { learning_rate }
    }

    /// Applies one step in place: `params -= lr * grad`.
    pub fn step(&self, params: &mut [f64], grad: &[f64]) {
        tensor::axpy(-self.learning_rate, grad, params);
    }
}

/// Configuration of a client's local training pass (paper defaults:
/// `E = 5`, `B = 10`, `η = 0.01`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainingConfig {
    /// Number of local epochs `E`.
    pub epochs: usize,
    /// Mini-batch size `B`.
    pub batch_size: usize,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// FedProx proximal coefficient `μ` (0 disables the proximal term).
    pub proximal_mu: f64,
}

impl Default for LocalTrainingConfig {
    fn default() -> Self {
        LocalTrainingConfig {
            epochs: 5,
            batch_size: 10,
            learning_rate: 0.01,
            proximal_mu: 0.0,
        }
    }
}

/// Statistics reported by one local training pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainingStats {
    /// Number of SGD steps (mini-batches) executed.
    pub steps: usize,
    /// Mean training loss over the final epoch.
    pub final_epoch_loss: f64,
    /// L2 distance between the parameters before and after training.
    pub update_norm: f64,
}

/// Runs `config.epochs` epochs of mini-batch SGD on `model` over the rows
/// `samples` of the dataset, in place. Returns per-pass statistics.
///
/// `samples` identifies the client's local shard D_i inside the shared
/// feature/label arrays, so no per-client copies of the data are made.
///
/// Convenience wrapper around [`train_local_with_scratch`] that builds a
/// one-shot [`Scratch`]; loops that train many clients should hold one
/// workspace per worker and call the `_with_scratch` form instead.
pub fn train_local<M: Model, R: Rng + ?Sized>(
    model: &mut M,
    features: &Matrix,
    labels: &[usize],
    samples: &[usize],
    config: &LocalTrainingConfig,
    rng: &mut R,
) -> LocalTrainingStats {
    let mut scratch = Scratch::new();
    train_local_with_scratch(model, features, labels, samples, config, rng, &mut scratch)
}

/// [`train_local`] with an externally owned [`Scratch`]: after the first
/// minibatch warms the buffers, every subsequent step of every epoch —
/// and every later client trained with the same workspace — runs without
/// heap allocation in the forward/backward pass.
pub fn train_local_with_scratch<M: Model, R: Rng + ?Sized>(
    model: &mut M,
    features: &Matrix,
    labels: &[usize],
    samples: &[usize],
    config: &LocalTrainingConfig,
    rng: &mut R,
    scratch: &mut Scratch,
) -> LocalTrainingStats {
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(config.epochs > 0, "epoch count must be positive");
    assert!(
        !samples.is_empty(),
        "a client cannot train on an empty shard"
    );

    let reference = crate::engine::reference_mode();
    let optimizer = Sgd::new(config.learning_rate);
    let anchor = model.params();
    // The reference mode reproduces the seed's per-sample loop verbatim,
    // including its separate parameter vector round-tripped through
    // `set_params` every step — that loop is the baseline the batched
    // engine's speedup is measured against.
    let mut reference_params = if reference {
        model.params()
    } else {
        Vec::new()
    };
    let mut grad: Vec<f64> = Vec::new();
    let mut order: Vec<usize> = samples.to_vec();
    let mut steps = 0;
    let mut final_epoch_loss = 0.0;

    for epoch in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        let mut epoch_batches = 0;
        for batch in order.chunks(config.batch_size) {
            // The model's own parameter vector is the optimizer state:
            // gradients are computed against it in place and the SGD step
            // mutates it directly, with no per-step copy. The batched
            // path leaves the gradient as a sum over the batch and folds
            // the `1/B` mean into the step's coefficient, saving one full
            // pass over the gradient per step; the reference path keeps
            // its original mean-gradient form.
            let loss = if reference {
                model.set_params(&reference_params);
                let (loss, mut reference_grad) =
                    model.loss_and_grad_reference(features, labels, batch);
                if config.proximal_mu > 0.0 {
                    // FedProx: grad += mu * (w - w_global).
                    for ((g, w), w0) in reference_grad
                        .iter_mut()
                        .zip(reference_params.iter())
                        .zip(anchor.iter())
                    {
                        *g += config.proximal_mu * (w - w0);
                    }
                }
                optimizer.step(&mut reference_params, &reference_grad);
                loss
            } else {
                let inverse_batch = 1.0 / batch.len() as f64;
                let loss_sum =
                    model.loss_and_sum_grad_batched(features, labels, batch, &mut grad, scratch);
                if config.proximal_mu > 0.0 {
                    // FedProx on the summed gradient: the proximal pull
                    // scales by B so the fused `lr/B` step recovers
                    // `lr * mu * (w - w_global)` exactly.
                    let mu_times_batch = config.proximal_mu * batch.len() as f64;
                    for ((g, w), w0) in grad
                        .iter_mut()
                        .zip(model.params_ref().iter())
                        .zip(anchor.iter())
                    {
                        *g += mu_times_batch * (w - w0);
                    }
                }
                tensor::axpy(
                    -config.learning_rate * inverse_batch,
                    &grad,
                    model.params_mut(),
                );
                loss_sum * inverse_batch
            };
            epoch_loss += loss;
            epoch_batches += 1;
            steps += 1;
        }
        if epoch == config.epochs - 1 {
            final_epoch_loss = epoch_loss / epoch_batches.max(1) as f64;
        }
    }

    if reference {
        model.set_params(&reference_params);
    }
    let update_norm = tensor::l2_norm(&tensor::sub(model.params_ref(), &anchor));
    LocalTrainingStats {
        steps,
        final_epoch_loss,
        update_norm,
    }
}

/// Number of SGD steps one local pass will take: `E * ceil(|D_i| / B)`,
/// the quantity the paper's T_local delay estimate is proportional to
/// (Section 4.1: complexity `O(E * |D_i| / B)`).
pub fn local_step_count(samples: usize, config: &LocalTrainingConfig) -> usize {
    config.epochs * samples.div_ceil(config.batch_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::SoftmaxRegression;
    use crate::model::{argmax, dataset_loss};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob_dataset() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let t = i as f64 * 0.02;
            rows.push(vec![1.0 + t, 0.5 - t, 1.0]);
            labels.push(0usize);
            rows.push(vec![-1.0 - t, -0.5 + t, -1.0]);
            labels.push(1usize);
            rows.push(vec![0.0 + t, 2.0, -1.0 - t]);
            labels.push(2usize);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let sgd = Sgd::new(0.1);
        let mut params = vec![1.0, 2.0];
        sgd.step(&mut params, &[1.0, -1.0]);
        assert_eq!(params, vec![0.9, 2.1]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn non_positive_learning_rate_rejected() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = LocalTrainingConfig::default();
        assert_eq!(c.epochs, 5);
        assert_eq!(c.batch_size, 10);
        assert!((c.learning_rate - 0.01).abs() < 1e-12);
        assert_eq!(c.proximal_mu, 0.0);
    }

    #[test]
    fn local_training_reduces_loss_and_reports_stats() {
        let (features, labels) = blob_dataset();
        let samples: Vec<usize> = (0..features.rows).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = SoftmaxRegression::new(3, 3, &mut rng);
        let before = dataset_loss(&model, &features, &labels);
        let config = LocalTrainingConfig {
            epochs: 10,
            batch_size: 10,
            learning_rate: 0.2,
            proximal_mu: 0.0,
        };
        let stats = train_local(&mut model, &features, &labels, &samples, &config, &mut rng);
        let after = dataset_loss(&model, &features, &labels);
        assert!(after < before, "loss should drop: {before} -> {after}");
        assert_eq!(stats.steps, 10 * 9); // 90 samples / batch 10 = 9 batches per epoch
        assert!(stats.update_norm > 0.0);
        assert!(stats.final_epoch_loss > 0.0);

        // Accuracy after training should be high on this separable data.
        let correct = samples
            .iter()
            .filter(|&&r| argmax(&model.logits(features.row(r))) == labels[r])
            .count();
        assert!(correct as f64 / samples.len() as f64 > 0.9);
    }

    #[test]
    fn proximal_term_keeps_params_closer_to_anchor() {
        let (features, labels) = blob_dataset();
        let samples: Vec<usize> = (0..features.rows).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let base_model = SoftmaxRegression::new(3, 3, &mut rng);

        let mut plain = base_model.clone();
        let mut prox = base_model.clone();
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let plain_cfg = LocalTrainingConfig {
            epochs: 8,
            batch_size: 10,
            learning_rate: 0.2,
            proximal_mu: 0.0,
        };
        let prox_cfg = LocalTrainingConfig {
            proximal_mu: 1.0,
            ..plain_cfg
        };
        let plain_stats = train_local(
            &mut plain, &features, &labels, &samples, &plain_cfg, &mut rng_a,
        );
        let prox_stats = train_local(
            &mut prox, &features, &labels, &samples, &prox_cfg, &mut rng_b,
        );
        assert!(
            prox_stats.update_norm < plain_stats.update_norm,
            "proximal update {} should be smaller than plain {}",
            prox_stats.update_norm,
            plain_stats.update_norm
        );
    }

    #[test]
    fn training_on_a_subset_only_uses_that_subset() {
        let (features, labels) = blob_dataset();
        let mut rng = StdRng::seed_from_u64(8);
        let mut model = SoftmaxRegression::new(3, 3, &mut rng);
        // Train on class-0 samples only (every third row starting at 0).
        let shard: Vec<usize> = (0..features.rows).step_by(3).collect();
        let config = LocalTrainingConfig {
            epochs: 20,
            batch_size: 5,
            learning_rate: 0.3,
            proximal_mu: 0.0,
        };
        train_local(&mut model, &features, &labels, &shard, &config, &mut rng);
        // The model masters its own shard (all class 0) but cannot have
        // learned the full three-class task from it.
        let shard_correct = shard
            .iter()
            .filter(|&&r| argmax(&model.logits(features.row(r))) == labels[r])
            .count();
        assert_eq!(shard_correct, shard.len(), "shard should be fit exactly");
        let overall = (0..features.rows)
            .filter(|&r| argmax(&model.logits(features.row(r))) == labels[r])
            .count();
        assert!(
            (overall as f64 / features.rows as f64) < 0.9,
            "a single-class shard cannot teach the full task ({} of {})",
            overall,
            features.rows
        );
    }

    #[test]
    fn step_count_formula() {
        let config = LocalTrainingConfig {
            epochs: 5,
            batch_size: 10,
            ..Default::default()
        };
        assert_eq!(local_step_count(100, &config), 50);
        assert_eq!(local_step_count(101, &config), 55);
        assert_eq!(local_step_count(1, &config), 5);
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn empty_shard_panics() {
        let (features, labels) = blob_dataset();
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = SoftmaxRegression::new(3, 3, &mut rng);
        let _ = train_local(
            &mut model,
            &features,
            &labels,
            &[],
            &LocalTrainingConfig::default(),
            &mut rng,
        );
    }
}
