//! Classification metrics: accuracy and confusion matrices.
//!
//! The evaluation's headline metric is "the average accuracy Σ acc_i / n,
//! where acc_i is the verification accuracy of client C_i in a
//! communication round" (Section 5.1); per-client accuracy is computed here
//! against each client's held-out rows.

use crate::model::Model;
use crate::tensor::Matrix;

/// Fraction of rows (restricted to `rows`, or all rows if `rows` is `None`)
/// whose predicted class matches the label.
pub fn accuracy<M: Model + ?Sized>(
    model: &M,
    features: &Matrix,
    labels: &[usize],
    rows: Option<&[usize]>,
) -> f64 {
    let all_rows: Vec<usize>;
    let rows = match rows {
        Some(r) => r,
        None => {
            all_rows = (0..features.rows).collect();
            &all_rows
        }
    };
    if rows.is_empty() {
        return 0.0;
    }
    let correct = rows
        .iter()
        .filter(|&&r| model.predict_row(features.row(r)) == labels[r])
        .count();
    correct as f64 / rows.len() as f64
}

/// Confusion matrix `counts[true][predicted]` over the given rows.
pub fn confusion_matrix<M: Model + ?Sized>(
    model: &M,
    features: &Matrix,
    labels: &[usize],
    classes: usize,
) -> Vec<Vec<usize>> {
    let mut counts = vec![vec![0usize; classes]; classes];
    for r in 0..features.rows {
        let truth = labels[r];
        let predicted = model.predict_row(features.row(r));
        if truth < classes && predicted < classes {
            counts[truth][predicted] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::SoftmaxRegression;
    use crate::model::Model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A model rigged to always predict class 0 (by setting a huge bias).
    fn rigged_model() -> SoftmaxRegression {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = SoftmaxRegression::new(2, 3, &mut rng);
        let mut p = vec![0.0; m.num_params()];
        p[2 * 3] = 100.0; // bias of class 0
        m.set_params(&p);
        m
    }

    #[test]
    fn accuracy_counts_matches() {
        let m = rigged_model();
        let features = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        let labels = vec![0, 0, 1];
        assert!((accuracy(&m, &features, &labels, None) - 2.0 / 3.0).abs() < 1e-12);
        assert!((accuracy(&m, &features, &labels, Some(&[2])) - 0.0).abs() < 1e-12);
        assert_eq!(accuracy(&m, &features, &labels, Some(&[])), 0.0);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_class_counts() {
        let m = rigged_model();
        let features = Matrix::from_rows(&vec![vec![0.0, 0.0]; 6]);
        let labels = vec![0, 0, 1, 1, 2, 2];
        let cm = confusion_matrix(&m, &features, &labels, 3);
        // Everything is predicted as class 0.
        assert_eq!(cm[0][0], 2);
        assert_eq!(cm[1][0], 2);
        assert_eq!(cm[2][0], 2);
        assert_eq!(cm[0][1] + cm[0][2] + cm[1][1] + cm[1][2] + cm[2][1] + cm[2][2], 0);
    }
}
