//! Classification metrics: accuracy and confusion matrices.
//!
//! The evaluation's headline metric is "the average accuracy Σ acc_i / n,
//! where acc_i is the verification accuracy of client C_i in a
//! communication round" (Section 5.1); per-client accuracy is computed here
//! against each client's held-out rows.
//!
//! Prediction runs through the batched engine: evaluation rows are packed
//! into blocks of [`EVAL_BLOCK`] and pushed through one logits GEMM per
//! block, with blocks distributed over worker threads (each reusing its
//! own [`Scratch`]). The per-row reference path is retained behind
//! [`crate::engine::reference_mode`] for equivalence tests and speedup
//! measurement. Batched logits agree with the per-row dot products to
//! within a few ulps (the kernels use fused multiply-add and striped
//! reductions), so predictions can differ from the reference path only
//! on logit ties at that scale.
//!
//! The logits GEMM dispatches through the PR 10 SIMD tier
//! ([`crate::simd`]) — that is where evaluation's cycles go. The
//! per-row argmax stays a scalar scan on purpose: it is a trivial
//! `classes`-wide loop whose first-maximum tie-breaking a `vmaxpd`
//! reduction would not preserve.

use crate::model::{argmax, Model};
use crate::par;
use crate::tensor::{Matrix, Scratch};

/// Rows per evaluation block: large enough to amortize the GEMM
/// dispatch, small enough that a block's logits stay cache-resident.
pub const EVAL_BLOCK: usize = 512;

fn count_correct_block<M: Model + ?Sized>(
    model: &M,
    features: &Matrix,
    labels: &[usize],
    block: &[usize],
    scratch: &mut Scratch,
) -> usize {
    let contiguous = block.windows(2).all(|w| w[1] == w[0] + 1);
    if contiguous && !block.is_empty() {
        // Contiguous ranges (the whole-dataset case) run straight on the
        // dataset's own storage — no gather copy.
        let start = block[0];
        let x = &features.data[start * features.cols..(start + block.len()) * features.cols];
        model.logits_block(x, block.len(), scratch);
    } else {
        features.select_rows_into(block, &mut scratch.x);
        model.logits_batch(scratch);
    }
    block
        .iter()
        .enumerate()
        .filter(|&(r, &index)| argmax(scratch.z.row(r)) == labels[index])
        .count()
}

/// Fraction of rows (restricted to `rows`, or all rows if `rows` is `None`)
/// whose predicted class matches the label.
pub fn accuracy<M: Model + Sync + ?Sized>(
    model: &M,
    features: &Matrix,
    labels: &[usize],
    rows: Option<&[usize]>,
) -> f64 {
    let all_rows: Vec<usize>;
    let rows = match rows {
        Some(r) => r,
        None => {
            all_rows = (0..features.rows).collect();
            &all_rows
        }
    };
    if rows.is_empty() {
        return 0.0;
    }
    if crate::engine::reference_mode() {
        return accuracy_reference(model, features, labels, rows);
    }
    let blocks: Vec<&[usize]> = rows.chunks(EVAL_BLOCK).collect();
    let correct: usize = par::par_map_with(&blocks, 1, Scratch::new, |scratch, _, block| {
        count_correct_block(model, features, labels, block, scratch)
    })
    .into_iter()
    .sum();
    correct as f64 / rows.len() as f64
}

/// Per-row reference implementation of [`accuracy`] (the pre-batching
/// engine), kept for equivalence tests and A/B measurement.
pub fn accuracy_reference<M: Model + ?Sized>(
    model: &M,
    features: &Matrix,
    labels: &[usize],
    rows: &[usize],
) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let correct = rows
        .iter()
        .filter(|&&r| model.predict_row(features.row(r)) == labels[r])
        .count();
    correct as f64 / rows.len() as f64
}

/// Confusion matrix `counts[true][predicted]` over the given rows.
pub fn confusion_matrix<M: Model + ?Sized>(
    model: &M,
    features: &Matrix,
    labels: &[usize],
    classes: usize,
) -> Vec<Vec<usize>> {
    let mut counts = vec![vec![0usize; classes]; classes];
    if crate::engine::reference_mode() {
        for (r, &truth) in labels.iter().enumerate().take(features.rows) {
            let predicted = model.predict_row(features.row(r));
            if truth < classes && predicted < classes {
                counts[truth][predicted] += 1;
            }
        }
        return counts;
    }
    let mut scratch = Scratch::new();
    let mut start = 0;
    while start < features.rows {
        let end = (start + EVAL_BLOCK).min(features.rows);
        // The row set is always contiguous here: run straight on the
        // dataset's own storage, no gather copy.
        let x = &features.data[start * features.cols..end * features.cols];
        model.logits_block(x, end - start, &mut scratch);
        for (offset, &truth) in labels[start..end].iter().enumerate() {
            let predicted = argmax(scratch.z.row(offset));
            if truth < classes && predicted < classes {
                counts[truth][predicted] += 1;
            }
        }
        start = end;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::SoftmaxRegression;
    use crate::model::Model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A model rigged to always predict class 0 (by setting a huge bias).
    fn rigged_model() -> SoftmaxRegression {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = SoftmaxRegression::new(2, 3, &mut rng);
        let mut p = vec![0.0; m.num_params()];
        p[2 * 3] = 100.0; // bias of class 0
        m.set_params(&p);
        m
    }

    #[test]
    fn accuracy_counts_matches() {
        let m = rigged_model();
        let features = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        let labels = vec![0, 0, 1];
        assert!((accuracy(&m, &features, &labels, None) - 2.0 / 3.0).abs() < 1e-12);
        assert!((accuracy(&m, &features, &labels, Some(&[2])) - 0.0).abs() < 1e-12);
        assert_eq!(accuracy(&m, &features, &labels, Some(&[])), 0.0);
    }

    #[test]
    fn batched_accuracy_matches_reference_across_block_boundary() {
        let _guard = crate::engine::mode_lock();
        let mut rng = StdRng::seed_from_u64(9);
        let m = SoftmaxRegression::new(6, 4, &mut rng);
        let rows = EVAL_BLOCK + 37;
        let features = Matrix::from_vec(
            rows,
            6,
            (0..rows * 6)
                .map(|i| ((i * 37) % 101) as f64 * 0.07 - 3.0)
                .collect(),
        );
        let labels: Vec<usize> = (0..rows).map(|i| i % 4).collect();
        let indices: Vec<usize> = (0..rows).collect();
        let batched = accuracy(&m, &features, &labels, None);
        let reference = accuracy_reference(&m, &features, &labels, &indices);
        assert_eq!(batched, reference);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_class_counts() {
        let m = rigged_model();
        let features = Matrix::from_rows(&vec![vec![0.0, 0.0]; 6]);
        let labels = vec![0, 0, 1, 1, 2, 2];
        let cm = confusion_matrix(&m, &features, &labels, 3);
        // Everything is predicted as class 0.
        assert_eq!(cm[0][0], 2);
        assert_eq!(cm[1][0], 2);
        assert_eq!(cm[2][0], 2);
        assert_eq!(
            cm[0][1] + cm[0][2] + cm[1][1] + cm[1][2] + cm[2][1] + cm[2][2],
            0
        );
    }
}
