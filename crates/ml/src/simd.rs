//! Runtime-dispatched AVX2+FMA kernel tier for the [`crate::tensor`]
//! GEMM family.
//!
//! # Bit-identical by construction
//!
//! Every vector kernel here computes *the same function in the same
//! order* as its scalar counterpart in `tensor.rs` — not an
//! approximately-equal rearrangement. The scalar kernels were written
//! lane-striped from the start (PR 1): each accumulator slot `acc[l]`
//! only ever combines products whose index is congruent to `l` modulo
//! the stripe width, the stripe is folded into `LANES` slots in a
//! fixed order, and the final reduction is a strict left-to-right sum.
//! The AVX2 forms map each group of four `f64` slots onto one `ymm`
//! register and each slot's `mul_add` onto the matching `vfmaddpd`
//! lane, so every intermediate value is produced by the same IEEE
//! operation on the same operands:
//!
//! * a stripe of `STRIPE` = 32 scalar accumulators is exactly eight
//!   `ymm` accumulators `y0..y7`;
//! * the scalar fold `folded[l % LANES] += acc[l]` (ascending `l`) is
//!   exactly `f0 = ((y0 + y2) + y4) + y6` and
//!   `f1 = ((y1 + y3) + y5) + y7`;
//! * the scalar tail (`LANES` at a time) continues on `f0`/`f1` with
//!   one FMA per vector, like the scalar loop continues on `folded`;
//! * the horizontal reduction spills `f0`/`f1` to memory and performs
//!   the same `folded.iter().sum()` the scalar path performs (a
//!   left-to-right chain of eight dependent adds), and the sub-`LANES`
//!   remainder stays plain scalar `out += a[i] * b[i]`.
//!
//! Because the lane-striped accumulators start at `+0.0` and an FMA
//! chain seeded with `+0.0` can never produce `-0.0`, the re-bracketed
//! vector fold cannot even diverge on signed zeros; the proptest suite
//! in `tests/simd_equivalence.rs` pins `to_bits()` equality across
//! arbitrary shapes anyway. The golden run digests from PRs 4–7 hold
//! under both tiers for the same reason — this is the same arithmetic,
//! computed wider, so no new `engine::set_reference_mode` tier exists.
//!
//! What deliberately *stays scalar*: `softmax_in_place` and the
//! cross-entropy losses call libm's `exp`/`ln`, whose bit patterns a
//! hand-vectorized polynomial cannot reproduce; the row-max fold uses
//! `f64::max` whose NaN/±0 semantics differ from `vmaxpd`; and argmax
//! in `metrics` is a trivial 10-wide scan. Their cost is a rounding
//! error next to the GEMMs, so they keep the one obviously-correct
//! implementation (see the notes in `activation.rs` / `loss.rs` /
//! `metrics.rs`).
//!
//! # Dispatch
//!
//! [`active`] resolves once (first call) from the `BFL_SIMD`
//! environment override and `is_x86_feature_detected!` — the same
//! cached-detection pattern as the SHA-NI dispatch in
//! `bfl-crypto::sha256` — then costs one relaxed atomic load per
//! query. `BFL_SIMD=off` pins the scalar tier (CI runs a full test leg
//! this way); `BFL_SIMD=avx2` asks for the vector tier but still
//! refuses hosts without AVX2+FMA rather than faulting. Non-x86_64
//! builds compile the scalar tier only and [`active`] is always
//! `false`. AVX-512 is intentionally not a tier: the workspace pins
//! `-C target-feature=-avx512f,...` (see `.cargo/config.toml` and the
//! ROADMAP note) because the fleet hosts downclock or lack 512-bit
//! units, and a 512-bit re-striping would also change the frozen
//! accumulation geometry.

use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(target_arch = "x86_64")]
use crate::tensor::{LANES, NT_K_BLOCK, STRIPE};

const UNRESOLVED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Resolved dispatch state: one of `UNRESOLVED`/`OFF`/`ON`. A plain
/// atomic (not `OnceLock`) so tests and benches can flip tiers in one
/// process via [`set_enabled`] and worker threads observe the change.
static STATE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Returns `true` when the AVX2+FMA tier is dispatched. First call
/// resolves `BFL_SIMD` + hardware detection; later calls are one
/// relaxed atomic load (cheap enough for per-`axpy` queries).
#[inline]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve_and_cache(),
    }
}

#[cold]
fn resolve_and_cache() -> bool {
    // Benign race: concurrent first calls resolve to the same value.
    let on = match std::env::var("BFL_SIMD").ok().as_deref() {
        Some("off") | Some("0") | Some("scalar") => false,
        // Forcing `avx2` still never dispatches past missing hardware.
        _ => hardware_supported(),
    };
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// True when the host CPU reports AVX2 and FMA.
pub fn hardware_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Test/bench hook: force the vector tier on or off for the whole
/// process (all threads). Forcing `true` on a host without AVX2+FMA is
/// ignored — the scalar tier stays pinned, never an illegal dispatch.
/// The equivalence suite and the `pr10` bench section use this to time
/// and compare both tiers in one process.
pub fn set_enabled(on: bool) {
    STATE.store(
        if on && hardware_supported() { ON } else { OFF },
        Ordering::Relaxed,
    );
}

/// Drops any cached or forced decision; the next [`active`] call
/// re-resolves from `BFL_SIMD` + hardware detection.
pub fn reset() {
    STATE.store(UNRESOLVED, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64 only). Callers must check `active()` first; every
// `unsafe fn` below requires AVX2+FMA, which `active()` guarantees.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    /// One lane-striped product stream: runs the `STRIPE`-wide FMA
    /// loop and the `LANES`-wide tail over `a`/`b`, returning the two
    /// folded `ymm` accumulators (`folded[0..4]`, `folded[4..8]`) and
    /// the index where vector coverage stopped (callers finish the
    /// sub-`LANES` remainder in scalar, exactly like `dot_lanes`).
    ///
    /// # Safety
    /// Requires AVX2+FMA; `a.len() == b.len()`. Deliberately carries no
    /// `#[target_feature]` of its own: `#[inline(always)]` (illegal on
    /// featured functions) guarantees the body is compiled inside its
    /// featured caller, so no binary — whatever its LTO partitioning —
    /// can leave a call boundary in the middle of a dot product. Callers
    /// must themselves be `#[target_feature(enable = "avx2,fma")]`.
    #[inline(always)]
    unsafe fn stream_one(a: &[f64], b: &[f64]) -> (__m256d, __m256d, usize) {
        debug_assert_eq!(a.len(), b.len());
        let len = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        // acc[t] holds scalar slots [4t, 4t+4): eight ymm = one STRIPE.
        let mut acc = [_mm256_setzero_pd(); STRIPE / 4];
        let mut i = 0usize;
        while i + STRIPE <= len {
            for (t, slot) in acc.iter_mut().enumerate() {
                let av = _mm256_loadu_pd(ap.add(i + 4 * t));
                let bv = _mm256_loadu_pd(bp.add(i + 4 * t));
                *slot = _mm256_fmadd_pd(av, bv, *slot);
            }
            i += STRIPE;
        }
        // Scalar fold order `folded[l % LANES] += acc[l]`, ascending l:
        // lane j gathers acc[j], acc[j+8], acc[j+16], acc[j+24].
        let mut f0 = _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(acc[0], acc[2]), acc[4]), acc[6]);
        let mut f1 = _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(acc[1], acc[3]), acc[5]), acc[7]);
        while i + LANES <= len {
            f0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), f0);
            f1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 4)),
                _mm256_loadu_pd(bp.add(i + 4)),
                f1,
            );
            i += LANES;
        }
        (f0, f1, i)
    }

    /// Horizontal reduction of one folded pair: spills to memory and
    /// performs the scalar path's literal `folded.iter().sum()`.
    ///
    /// # Safety
    /// Requires AVX2; see `stream_one` for why there is no
    /// `#[target_feature]` here.
    #[inline(always)]
    unsafe fn hsum1(f0: __m256d, f1: __m256d) -> f64 {
        let mut folded = [0.0f64; LANES];
        _mm256_storeu_pd(folded.as_mut_ptr(), f0);
        _mm256_storeu_pd(folded.as_mut_ptr().add(4), f1);
        folded.iter().sum()
    }

    /// Horizontal reduction of four folded pairs at once: a 4x4
    /// register transpose turns lane `l` of each output into one ymm,
    /// then seven lane-wise adds reproduce each output's left-to-right
    /// `folded[0] + folded[1] + … + folded[7]` chain bit-for-bit while
    /// amortizing the serial-add latency across four dot products.
    ///
    /// # Safety
    /// Requires AVX2; see `stream_one` for why there is no
    /// `#[target_feature]` here.
    #[inline(always)]
    unsafe fn hsum4(p: &[(__m256d, __m256d); 4]) -> [f64; 4] {
        let t0 = _mm256_unpacklo_pd(p[0].0, p[1].0);
        let t1 = _mm256_unpackhi_pd(p[0].0, p[1].0);
        let t2 = _mm256_unpacklo_pd(p[2].0, p[3].0);
        let t3 = _mm256_unpackhi_pd(p[2].0, p[3].0);
        let l0 = _mm256_permute2f128_pd(t0, t2, 0x20);
        let l1 = _mm256_permute2f128_pd(t1, t3, 0x20);
        let l2 = _mm256_permute2f128_pd(t0, t2, 0x31);
        let l3 = _mm256_permute2f128_pd(t1, t3, 0x31);
        let u0 = _mm256_unpacklo_pd(p[0].1, p[1].1);
        let u1 = _mm256_unpackhi_pd(p[0].1, p[1].1);
        let u2 = _mm256_unpacklo_pd(p[2].1, p[3].1);
        let u3 = _mm256_unpackhi_pd(p[2].1, p[3].1);
        let l4 = _mm256_permute2f128_pd(u0, u2, 0x20);
        let l5 = _mm256_permute2f128_pd(u1, u3, 0x20);
        let l6 = _mm256_permute2f128_pd(u0, u2, 0x31);
        let l7 = _mm256_permute2f128_pd(u1, u3, 0x31);
        // Same association as the scalar sum: ((((((l0+l1)+l2)+l3)+l4)+l5)+l6)+l7.
        let mut s = _mm256_add_pd(l0, l1);
        s = _mm256_add_pd(s, l2);
        s = _mm256_add_pd(s, l3);
        s = _mm256_add_pd(s, l4);
        s = _mm256_add_pd(s, l5);
        s = _mm256_add_pd(s, l6);
        s = _mm256_add_pd(s, l7);
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), s);
        out
    }

    /// AVX2 `crate::tensor::dot_lanes`: identical stripe, fold, tail,
    /// and remainder order — see the module docs.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `a.len() == b.len()`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let (f0, f1, mut i) = stream_one(a, b);
        let mut out = hsum1(f0, f1);
        while i < a.len() {
            out += a[i] * b[i];
            i += 1;
        }
        out
    }

    /// AVX2 large-row `A · Bᵀ` regime (evaluation logits, Gram
    /// matrices): the per-element dot is [`dot`], unchanged; the only
    /// vector-tier addition is a 4-row output tile with `j` innermost,
    /// so each `B` row is touched once per tile instead of once per
    /// output row — on Gram shapes (`B` panel ≫ L2) that quarters the
    /// dominant memory traffic. Pure loop interchange over independent
    /// output elements: bit-identity is structural.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `a_row(r).len() == k` for `r < rows`,
    /// `b.len() == n * k`, `c.len() == rows * n`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_nt_large<'a>(
        a_row: &impl Fn(usize) -> &'a [f64],
        rows: usize,
        b: &[f64],
        c: &mut [f64],
        k: usize,
        n: usize,
    ) {
        // Tile depth by `A`-row footprint: short rows (evaluation
        // logits) keep the whole tile plus one `B` row L1-resident, so
        // a shallow tile avoids thrashing; long rows (Gram matrices,
        // 63 KiB/row) never fit L1 anyway and the tile only exists to
        // divide how often the `B` panel streams from L2/L3 — go deep.
        let tile = if k * 8 > 24 * 1024 { 16 } else { 4 };
        let mut r0 = 0usize;
        while r0 < rows {
            let r_end = (r0 + tile).min(rows);
            for j in 0..n {
                let b_j = &b[j * k..(j + 1) * k];
                for r in r0..r_end {
                    c[r * n + j] = dot(a_row(r), b_j);
                }
            }
            r0 = r_end;
        }
    }

    /// AVX2 small-row `A · Bᵀ` regime (minibatch logits): same
    /// `NT_K_BLOCK` blocking and per-block partial accumulation as
    /// the scalar path (`c_j = partial` on the first block, `+=` on
    /// later ones), with one vector-tier addition: four `j` outputs
    /// stream per pass and share one `hsum4` transpose-reduction, so
    /// the eight-add horizontal chain — the dominant latency at 128-wide
    /// blocks — is paid once per four outputs instead of per output.
    /// Each output's partial value is still produced by the identical
    /// stripe/fold/tail/remainder sequence.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `a_row(r).len() == k` for every output row
    /// `r`, `b.len() == n * k`, `c.len()` a multiple of `n`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_nt_small<'a>(
        a_row: &impl Fn(usize) -> &'a [f64],
        b: &[f64],
        c: &mut [f64],
        k: usize,
        n: usize,
    ) {
        let mut k0 = 0usize;
        while k0 < k {
            let k_end = (k0 + NT_K_BLOCK).min(k);
            for (offset, c_row) in c.chunks_mut(n).enumerate() {
                let a_blk = &a_row(offset)[k0..k_end];
                let blk = k_end - k0;
                let mut j = 0usize;
                while j + 4 <= n {
                    let b_blk = |t: usize| &b[(j + t) * k + k0..(j + t) * k + k_end];
                    let s0 = stream_one(a_blk, b_blk(0));
                    let s1 = stream_one(a_blk, b_blk(1));
                    let s2 = stream_one(a_blk, b_blk(2));
                    let s3 = stream_one(a_blk, b_blk(3));
                    let rem = s0.2;
                    let sums = hsum4(&[(s0.0, s0.1), (s1.0, s1.1), (s2.0, s2.1), (s3.0, s3.1)]);
                    for (t, &head) in sums.iter().enumerate() {
                        let mut partial = head;
                        let b_t = b_blk(t);
                        for i in rem..blk {
                            partial += a_blk[i] * b_t[i];
                        }
                        let c_j = &mut c_row[j + t];
                        if k0 == 0 {
                            *c_j = partial;
                        } else {
                            *c_j += partial;
                        }
                    }
                    j += 4;
                }
                while j < n {
                    let partial = dot(a_blk, &b[j * k + k0..j * k + k_end]);
                    let c_j = &mut c_row[j];
                    if k0 == 0 {
                        *c_j = partial;
                    } else {
                        *c_j += partial;
                    }
                    j += 1;
                }
            }
            k0 = k_end;
        }
    }

    /// AVX2 `C = Aᵀ · B` register tile, generic over how `B` rows are
    /// fetched (contiguous for `gemm_tn`/`gemm_tn_overwrite`, dataset
    /// row indices for `gemm_tn_indexed_overwrite`) and over
    /// `ACCUMULATE` — the same two axes as the unified scalar body it
    /// mirrors. Four output rows × `LANES` columns advance together;
    /// each scalar `[f64; LANES]` accumulator pair is two ymm, each
    /// broadcast `a_col[r].mul_add(bv[l], acc[l])` is one
    /// `vbroadcastsd` + two `vfmaddpd`, and the sample (`k`) loop order
    /// is unchanged, so every output element accumulates its `k`
    /// contributions in the reference order. Sub-`LANES` column tails
    /// and sub-4-row remainders run the scalar body's literal tail code.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `a.len() == k * m`, `b_row(kk).len() >= n`
    /// for `kk < k`, `chunk` a whole-row window of `C` starting at row
    /// `row_start`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_tn<'a, const ACCUMULATE: bool>(
        a: &[f64],
        b_row: &impl Fn(usize) -> &'a [f64],
        chunk: &mut [f64],
        row_start: usize,
        k: usize,
        m: usize,
        n: usize,
    ) {
        let rows = chunk.len() / n;
        let mut r = 0usize;
        while r + 4 <= rows {
            let base = row_start + r;
            let sub = &mut chunk[r * n..(r + 4) * n];
            let (c0, rest) = sub.split_at_mut(n);
            let (c1, rest) = rest.split_at_mut(n);
            let (c2, c3) = rest.split_at_mut(n);
            let mut j = 0usize;
            while j + LANES <= n {
                let load = |row: &[f64]| -> (__m256d, __m256d) {
                    if ACCUMULATE {
                        (
                            _mm256_loadu_pd(row.as_ptr().add(j)),
                            _mm256_loadu_pd(row.as_ptr().add(j + 4)),
                        )
                    } else {
                        (_mm256_setzero_pd(), _mm256_setzero_pd())
                    }
                };
                let (mut a0l, mut a0h) = load(c0);
                let (mut a1l, mut a1h) = load(c1);
                let (mut a2l, mut a2h) = load(c2);
                let (mut a3l, mut a3h) = load(c3);
                for kk in 0..k {
                    let brow = b_row(kk);
                    let bl = _mm256_loadu_pd(brow.as_ptr().add(j));
                    let bh = _mm256_loadu_pd(brow.as_ptr().add(j + 4));
                    let a_col = a.as_ptr().add(kk * m + base);
                    let w0 = _mm256_broadcast_sd(&*a_col);
                    a0l = _mm256_fmadd_pd(w0, bl, a0l);
                    a0h = _mm256_fmadd_pd(w0, bh, a0h);
                    let w1 = _mm256_broadcast_sd(&*a_col.add(1));
                    a1l = _mm256_fmadd_pd(w1, bl, a1l);
                    a1h = _mm256_fmadd_pd(w1, bh, a1h);
                    let w2 = _mm256_broadcast_sd(&*a_col.add(2));
                    a2l = _mm256_fmadd_pd(w2, bl, a2l);
                    a2h = _mm256_fmadd_pd(w2, bh, a2h);
                    let w3 = _mm256_broadcast_sd(&*a_col.add(3));
                    a3l = _mm256_fmadd_pd(w3, bl, a3l);
                    a3h = _mm256_fmadd_pd(w3, bh, a3h);
                }
                let store = |row: &mut [f64], lo: __m256d, hi: __m256d| {
                    _mm256_storeu_pd(row.as_mut_ptr().add(j), lo);
                    _mm256_storeu_pd(row.as_mut_ptr().add(j + 4), hi);
                };
                store(c0, a0l, a0h);
                store(c1, a1l, a1h);
                store(c2, a2l, a2h);
                store(c3, a3l, a3h);
                j += LANES;
            }
            while j < n {
                let init = |row: &[f64]| if ACCUMULATE { row[j] } else { 0.0 };
                let mut s0 = init(c0);
                let mut s1 = init(c1);
                let mut s2 = init(c2);
                let mut s3 = init(c3);
                for kk in 0..k {
                    let b_j = b_row(kk)[j];
                    let a_col = &a[kk * m + base..kk * m + base + 4];
                    s0 += a_col[0] * b_j;
                    s1 += a_col[1] * b_j;
                    s2 += a_col[2] * b_j;
                    s3 += a_col[3] * b_j;
                }
                c0[j] = s0;
                c1[j] = s1;
                c2[j] = s2;
                c3[j] = s3;
                j += 1;
            }
            r += 4;
        }
        // Two remainder rows fuse into one pass over `B` (the scalar
        // body takes them one at a time; per-element accumulation order
        // is unchanged, only which pass computes each row).
        if r + 2 <= rows {
            let base = row_start + r;
            let sub = &mut chunk[r * n..(r + 2) * n];
            let (c0, c1) = sub.split_at_mut(n);
            let mut j = 0usize;
            while j + LANES <= n {
                let load = |row: &[f64]| -> (__m256d, __m256d) {
                    if ACCUMULATE {
                        (
                            _mm256_loadu_pd(row.as_ptr().add(j)),
                            _mm256_loadu_pd(row.as_ptr().add(j + 4)),
                        )
                    } else {
                        (_mm256_setzero_pd(), _mm256_setzero_pd())
                    }
                };
                let (mut a0l, mut a0h) = load(c0);
                let (mut a1l, mut a1h) = load(c1);
                for kk in 0..k {
                    let brow = b_row(kk);
                    let bl = _mm256_loadu_pd(brow.as_ptr().add(j));
                    let bh = _mm256_loadu_pd(brow.as_ptr().add(j + 4));
                    let a_col = a.as_ptr().add(kk * m + base);
                    let w0 = _mm256_broadcast_sd(&*a_col);
                    a0l = _mm256_fmadd_pd(w0, bl, a0l);
                    a0h = _mm256_fmadd_pd(w0, bh, a0h);
                    let w1 = _mm256_broadcast_sd(&*a_col.add(1));
                    a1l = _mm256_fmadd_pd(w1, bl, a1l);
                    a1h = _mm256_fmadd_pd(w1, bh, a1h);
                }
                _mm256_storeu_pd(c0.as_mut_ptr().add(j), a0l);
                _mm256_storeu_pd(c0.as_mut_ptr().add(j + 4), a0h);
                _mm256_storeu_pd(c1.as_mut_ptr().add(j), a1l);
                _mm256_storeu_pd(c1.as_mut_ptr().add(j + 4), a1h);
                j += LANES;
            }
            while j < n {
                let init = |row: &[f64]| if ACCUMULATE { row[j] } else { 0.0 };
                let mut s0 = init(c0);
                let mut s1 = init(c1);
                for kk in 0..k {
                    let b_j = b_row(kk)[j];
                    let a_col = &a[kk * m + base..kk * m + base + 2];
                    s0 += a_col[0] * b_j;
                    s1 += a_col[1] * b_j;
                }
                c0[j] = s0;
                c1[j] = s1;
                j += 1;
            }
            r += 2;
        }
        while r < rows {
            let i = row_start + r;
            let c_row = &mut chunk[r * n..(r + 1) * n];
            let mut j = 0usize;
            while j + LANES <= n {
                let (mut al, mut ah) = if ACCUMULATE {
                    (
                        _mm256_loadu_pd(c_row.as_ptr().add(j)),
                        _mm256_loadu_pd(c_row.as_ptr().add(j + 4)),
                    )
                } else {
                    (_mm256_setzero_pd(), _mm256_setzero_pd())
                };
                for kk in 0..k {
                    let brow = b_row(kk);
                    let w = _mm256_broadcast_sd(&a[kk * m + i]);
                    al = _mm256_fmadd_pd(w, _mm256_loadu_pd(brow.as_ptr().add(j)), al);
                    ah = _mm256_fmadd_pd(w, _mm256_loadu_pd(brow.as_ptr().add(j + 4)), ah);
                }
                _mm256_storeu_pd(c_row.as_mut_ptr().add(j), al);
                _mm256_storeu_pd(c_row.as_mut_ptr().add(j + 4), ah);
                j += LANES;
            }
            while j < n {
                let mut s = if ACCUMULATE { c_row[j] } else { 0.0 };
                for kk in 0..k {
                    s += a[kk * m + i] * b_row(kk)[j];
                }
                c_row[j] = s;
                j += 1;
            }
            r += 1;
        }
    }

    /// AVX2 `y += alpha * x`. The scalar form is a separate multiply
    /// then add (`*yi += alpha * xi`, two roundings), so this uses
    /// `vmulpd` + `vaddpd` — **not** FMA, which would change results.
    /// Element-wise with no cross-lane reduction, so vector width
    /// cannot reorder anything.
    ///
    /// # Safety
    /// Requires AVX2; `x.len() == y.len()`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let len = x.len();
        let av = _mm256_broadcast_sd(&alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0usize;
        while i + LANES <= len {
            let y0 = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(i)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i))),
            );
            let y1 = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(i + 4)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i + 4))),
            );
            _mm256_storeu_pd(yp.add(i), y0);
            _mm256_storeu_pd(yp.add(i + 4), y1);
            i += LANES;
        }
        if i + 4 <= len {
            let y0 = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(i)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i))),
            );
            _mm256_storeu_pd(yp.add(i), y0);
            i += 4;
        }
        while i < len {
            y[i] += alpha * x[i];
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use avx2::{axpy, dot, gemm_nt_large, gemm_nt_small, gemm_tn};
