//! Loss functions.
//!
//! Stays scalar under the PR 10 SIMD tier ([`crate::simd`]): the
//! cross-entropy path is one libm `ln` (plus the softmax's `exp`s) per
//! batch row — not reproducible bit-for-bit by a vector polynomial and
//! negligible next to the logits/gradient GEMMs that surround it.

use crate::activation::softmax;

/// Cross-entropy loss of a softmax distribution against an integer label.
///
/// Takes raw logits; the softmax is computed internally in a numerically
/// stable way. Returns the negative log-likelihood of the true class.
pub fn cross_entropy(logits: &[f64], label: usize) -> f64 {
    debug_assert!(label < logits.len());
    let probs = softmax(logits);
    -(probs[label].max(1e-15)).ln()
}

/// Gradient of the softmax cross-entropy loss with respect to the logits:
/// `softmax(logits) - one_hot(label)`.
pub fn cross_entropy_grad(logits: &[f64], label: usize) -> Vec<f64> {
    debug_assert!(label < logits.len());
    let mut grad = softmax(logits);
    grad[label] -= 1.0;
    grad
}

/// Mean squared error between predictions and targets.
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    debug_assert_eq!(predictions.len(), targets.len());
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets.iter())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = vec![10.0, -10.0, -10.0];
        assert!(cross_entropy(&logits, 0) < 1e-6);
        assert!(cross_entropy(&logits, 1) > 5.0);
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = vec![0.0; 10];
        let loss = cross_entropy(&logits, 3);
        assert!((loss - (10.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let logits = vec![0.3, -1.2, 2.0, 0.0];
        let g = cross_entropy_grad(&logits, 2);
        let sum: f64 = g.iter().sum();
        assert!(sum.abs() < 1e-12);
        // The true-class entry is negative (prob - 1 < 0).
        assert!(g[2] < 0.0);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mse(&[1.0, 3.0], &[0.0, 0.0]) - 5.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn cross_entropy_is_nonnegative(logits in proptest::collection::vec(-20.0f64..20.0, 2..12), idx in 0usize..12) {
            let label = idx % logits.len();
            prop_assert!(cross_entropy(&logits, label) >= 0.0);
        }

        #[test]
        fn gradient_matches_finite_difference(logits in proptest::collection::vec(-3.0f64..3.0, 2..8), idx in 0usize..8) {
            let label = idx % logits.len();
            let g = cross_entropy_grad(&logits, label);
            let eps = 1e-6;
            for i in 0..logits.len() {
                let mut plus = logits.clone();
                plus[i] += eps;
                let mut minus = logits.clone();
                minus[i] -= eps;
                let numeric = (cross_entropy(&plus, label) - cross_entropy(&minus, label)) / (2.0 * eps);
                prop_assert!((numeric - g[i]).abs() < 1e-4, "component {i}: numeric {numeric} vs analytic {}", g[i]);
            }
        }
    }
}
