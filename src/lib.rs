//! # fair-bfl
//!
//! A from-scratch Rust reproduction of **FAIR-BFL: Flexible and Incentive
//! Redesign for Blockchain-based Federated Learning** (Xu, Pokhrel, Lan,
//! Li — ICPP 2022, arXiv:2206.12899).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`crypto`] — SHA-256, big integers, RSA sign/verify, key store.
//! * [`chain`] — proof-of-work blocks, mempool, fork model, consensus.
//! * [`ml`] — tensors, softmax regression / MLP, SGD, gradient utilities.
//! * [`data`] — the synthetic MNIST surrogate and federated partitioners.
//! * [`cluster`] — DBSCAN / k-means / agglomerative clustering.
//! * [`net`] — simulated clock, link-delay models, topology.
//! * [`fl`] — FedAvg / FedProx baselines, clients, attacks.
//! * [`core`] — FAIR-BFL itself: the five procedures, Algorithm 2,
//!   Equation 1, the delay model, detection, and the simulation driver.
//!
//! ## Quickstart
//!
//! Scenarios are composed with a validating builder, run either in one
//! shot or round by round through the stepwise engine, and fanned out in
//! grids by the sweep runner:
//!
//! ```no_run
//! use fair_bfl::core::{AggregationAnchor, Scenario};
//! use fair_bfl::data::{SynthMnist, SynthMnistConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let (train, test) = SynthMnist::new(SynthMnistConfig::default()).generate(&mut rng);
//! let scenario = Scenario::builder()
//!     .clients(20)
//!     .rounds(10)
//!     .anchor(AggregationAnchor::Median)
//!     .build()
//!     .unwrap();
//! let result = scenario.run(&train, &test).unwrap();
//! println!(
//!     "final accuracy {:.3}, mean delay {:.2}s",
//!     result.final_accuracy().unwrap_or(0.0),
//!     result.mean_delay()
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper's
//! evaluation.

#![warn(missing_docs)]

pub use bfl_chain as chain;
pub use bfl_cluster as cluster;
pub use bfl_core as core;
pub use bfl_crypto as crypto;
pub use bfl_data as data;
pub use bfl_fl as fl;
pub use bfl_ml as ml;
pub use bfl_net as net;

/// Version of the reproduction, mirroring the workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
