//! Cross-substrate integration tests that exercise the seams between the
//! workspace crates without running the full simulation: signed gradient
//! transactions flowing through the mempool into mined blocks, real
//! training gradients being clustered by Algorithm 2's backends, and the
//! delay model agreeing with the chain substrate's expectations.

use fair_bfl::chain::{Blockchain, Mempool, PowConfig, Transaction};
use fair_bfl::cluster::{dbscan, DbscanConfig, DistanceMetric};
use fair_bfl::crypto::signature::sign_message;
use fair_bfl::crypto::KeyStore;
use fair_bfl::data::{SynthMnist, SynthMnistConfig};
use fair_bfl::ml::gradient;
use fair_bfl::ml::model::{Model, ModelKind};
use fair_bfl::ml::optimizer::{train_local, LocalTrainingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn signed_gradient_transactions_flow_from_clients_to_a_mined_block() {
    let mut rng = StdRng::seed_from_u64(71);

    // Provision three clients with RSA keys held by the miner.
    let mut keystore = KeyStore::new();
    let pairs = keystore.provision(&mut rng, &[1, 2, 3], 256).unwrap();

    // Each client produces a (fake) gradient payload, signs it, and submits
    // it through the miner's mempool.
    let mut mempool = Mempool::new();
    for id in 1..=3u64 {
        let grad: Vec<f64> = (0..32)
            .map(|i| (id as f64) * 0.1 + i as f64 * 0.01)
            .collect();
        let payload = gradient::to_bytes(&grad);
        let envelope = sign_message(id, &payload, &pairs[&id].private);
        let tx = Transaction::local_gradient(id, 1, payload);
        mempool
            .submit_signed(tx, &envelope, &keystore)
            .expect("registered client uploads verify");
    }
    assert_eq!(mempool.len(), 3);

    // A forged submission (client 2 impersonating client 1) never reaches
    // the pool.
    let forged_envelope = sign_message(1, b"poison", &pairs[&2].private);
    let forged_tx = Transaction::local_gradient(1, 1, b"poison".to_vec());
    assert!(mempool
        .submit_signed(forged_tx, &forged_envelope, &keystore)
        .is_err());
    assert_eq!(mempool.len(), 3);

    // The miner drains the pool into a block and mines it onto its chain.
    let mut chain = Blockchain::new();
    let batch = mempool.drain_block(chain.max_block_bytes);
    assert_eq!(batch.len(), 3);
    chain
        .mine_and_append(batch, 1_000, &PowConfig::new(32), 0)
        .unwrap();
    chain.validate_all().unwrap();
    assert_eq!(chain.height(), 1);
    assert_eq!(chain.tip().transactions.len(), 3);

    // Round-trip: the payload recorded on chain decodes back to a gradient.
    for tx in &chain.tip().transactions {
        match &tx.kind {
            fair_bfl::chain::TransactionKind::LocalGradient { payload, .. } => {
                let decoded = gradient::from_bytes(payload).expect("valid gradient bytes");
                assert_eq!(decoded.len(), 32);
            }
            other => panic!("unexpected transaction {other:?}"),
        }
    }
}

#[test]
fn real_training_gradients_cluster_by_data_quality() {
    // Train several models from the same initialization: most on correct
    // labels, two on permuted labels. DBSCAN over the resulting parameter
    // vectors should separate the two populations — the property
    // Algorithm 2's contribution identification relies on.
    let mut rng = StdRng::seed_from_u64(72);
    let data = SynthMnist::new(SynthMnistConfig {
        train_samples: 200,
        test_samples: 10,
        noise_std: 0.05,
        max_translation: 1.0,
    })
    .generate_split(200, &mut rng);

    let kind = ModelKind::SoftmaxRegression {
        features: 784,
        classes: 10,
    };
    let init = kind.build(&mut rng).params();
    let config = LocalTrainingConfig {
        epochs: 2,
        batch_size: 10,
        learning_rate: 0.1,
        proximal_mu: 0.0,
    };

    let mut uploads: Vec<Vec<f64>> = Vec::new();
    for worker in 0..6 {
        let honest = worker < 4;
        let labels: Vec<usize> = if honest {
            data.labels.clone()
        } else {
            data.labels.iter().map(|&l| (l + 5) % 10).collect()
        };
        let samples: Vec<usize> = (0..data.len()).collect();
        let mut model = kind.build(&mut StdRng::seed_from_u64(100 + worker as u64));
        model.set_params(&init);
        let mut train_rng = StdRng::seed_from_u64(300 + worker as u64);
        train_local(
            &mut model,
            &data.features,
            &labels,
            &samples,
            &config,
            &mut train_rng,
        );
        let delta: Vec<f64> = model
            .params()
            .iter()
            .zip(init.iter())
            .map(|(a, b)| a - b)
            .collect();
        uploads.push(delta);
    }

    let labels = dbscan(
        &uploads,
        &DbscanConfig {
            eps: 0.6,
            min_points: 2,
            metric: DistanceMetric::Cosine,
        },
    );
    // The four honest deltas share a cluster; the two label-permuted deltas
    // do not join it.
    assert!(labels.same_cluster(0, 1));
    assert!(labels.same_cluster(0, 2));
    assert!(labels.same_cluster(0, 3));
    assert!(!labels.same_cluster(0, 4));
    assert!(!labels.same_cluster(0, 5));
}

#[test]
fn delay_model_block_interval_matches_chain_expectation() {
    use fair_bfl::chain::miner::{expected_competition_time, Miner};
    use fair_bfl::core::DelayModel;

    let model = DelayModel::default();
    let miners: Vec<Miner> = (0..2)
        .map(|id| Miner::new(id, model.miner_hash_rate))
        .collect();
    let chain_expectation = expected_competition_time(&miners, &model.pow_config());
    // The delay model's expected T_bl is the chain substrate's expected
    // competition time plus the consensus overhead — the two layers agree.
    assert!((model.expected_t_bl(2) - chain_expectation - model.consensus_overhead_s).abs() < 1e-9);
}
