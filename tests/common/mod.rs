//! Shared fixtures for the cross-crate integration tests.

use fair_bfl::core::BflConfig;
use fair_bfl::data::{Dataset, SynthMnist, SynthMnistConfig};
use fair_bfl::fl::config::PartitionKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small synthetic MNIST split shared by the integration tests.
pub fn small_dataset() -> (Dataset, Dataset) {
    let generator = SynthMnist::new(SynthMnistConfig {
        train_samples: 250,
        test_samples: 80,
        noise_std: 0.05,
        max_translation: 1.0,
    });
    let mut rng = StdRng::seed_from_u64(1234);
    generator.generate(&mut rng)
}

/// A FAIR-BFL configuration scaled for integration testing: 10 clients,
/// IID partition, one local epoch.
pub fn small_config(rounds: usize) -> BflConfig {
    let mut config = BflConfig::small_test(rounds);
    config.fl.partition = PartitionKind::Iid;
    config
}
