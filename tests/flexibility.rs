//! Integration tests for the flexibility (functional-scaling) design:
//! the degraded modes must behave like the systems they claim to be
//! equivalent to, and their delay budgets must reflect the procedures they
//! actually run.

mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::{BflSimulation, FlexibilityMode};
use fair_bfl::fl::config::PartitionKind;
use fair_bfl::fl::trainer::{FlAlgorithm, FlTrainer};

#[test]
fn fl_only_mode_matches_a_standalone_fedavg_trainer_in_quality() {
    let (train, test) = small_dataset();

    // FAIR-BFL degraded to FL-only, with fair aggregation disabled so the
    // aggregation rule is exactly FedAvg's simple average.
    let mut config = small_config(5);
    config.mode = FlexibilityMode::FlOnly;
    config.fair_aggregation = false;
    config.verify_signatures = false;
    let degraded = BflSimulation::new(config).run(&train, &test).unwrap();

    // The standalone FedAvg baseline on the same data and scale.
    let mut fl_config = config.fl;
    fl_config.partition = PartitionKind::Iid;
    let fedavg = FlTrainer::new(fl_config, FlAlgorithm::FedAvg).run(&train, &test);

    // They are distinct implementations with independent randomness, so we
    // compare capability, not bits: both learn the task to a similar level.
    let degraded_acc = degraded.final_accuracy().unwrap();
    let fedavg_acc = fedavg.history.final_accuracy().unwrap();
    assert!(
        degraded_acc > 0.5,
        "degraded FL-only mode learns ({degraded_acc})"
    );
    assert!(fedavg_acc > 0.5, "standalone FedAvg learns ({fedavg_acc})");
    assert!(
        (degraded_acc - fedavg_acc).abs() < 0.25,
        "FL-only mode ({degraded_acc:.3}) should be in the same quality class as FedAvg ({fedavg_acc:.3})"
    );

    // And no ledger is produced.
    assert!(degraded.chain.is_none());
}

#[test]
fn chain_only_mode_produces_a_ledger_and_no_model() {
    let (train, test) = small_dataset();
    let mut config = small_config(3);
    config.mode = FlexibilityMode::ChainOnly;
    let result = BflSimulation::new(config).run(&train, &test).unwrap();

    let chain = result.chain.as_ref().unwrap();
    chain.validate_all().unwrap();
    assert!(chain.height() >= 3);
    assert!(result.final_params.is_empty());
    assert_eq!(result.final_accuracy(), Some(0.0));
    // Every block carries the submitted worker transactions.
    let transactions: usize = chain.iter().skip(1).map(|b| b.transactions.len()).sum();
    assert_eq!(transactions, config.fl.clients * config.fl.rounds);
}

#[test]
fn delay_budgets_reflect_the_active_procedures() {
    let (train, test) = small_dataset();

    let mut full = small_config(3);
    full.fl.clients = 10;
    let mut fl_only = full;
    fl_only.mode = FlexibilityMode::FlOnly;
    let mut chain_only = full;
    chain_only.mode = FlexibilityMode::ChainOnly;

    let full_result = BflSimulation::new(full).run(&train, &test).unwrap();
    let fl_result = BflSimulation::new(fl_only).run(&train, &test).unwrap();
    let chain_result = BflSimulation::new(chain_only).run(&train, &test).unwrap();

    // Full BFL pays for every procedure.
    for outcome in &full_result.outcomes {
        assert!(outcome.breakdown.t_local > 0.0);
        assert!(outcome.breakdown.t_up > 0.0);
        assert!(outcome.breakdown.t_gl > 0.0);
        assert!(outcome.breakdown.t_bl > 0.0);
    }
    // FL-only never mines or exchanges.
    for outcome in &fl_result.outcomes {
        assert_eq!(outcome.breakdown.t_bl, 0.0);
        assert_eq!(outcome.breakdown.t_ex, 0.0);
        assert!(outcome.breakdown.t_local > 0.0);
    }
    // Chain-only never trains.
    for outcome in &chain_result.outcomes {
        assert_eq!(outcome.breakdown.t_local, 0.0);
        assert!(outcome.breakdown.t_bl > 0.0);
    }

    // Removing procedures can only reduce the round delay relative to the
    // full system at the same scale.
    assert!(fl_result.mean_delay() < full_result.mean_delay());
}
