//! End-to-end integration tests: a full FAIR-BFL run exercised through the
//! facade crate, with cross-crate invariants checked on the results (ledger
//! audit, reward accounting, determinism, convergence bookkeeping).

mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::{BflSimulation, TheoremParams};
use fair_bfl::ml::gradient;

#[test]
fn full_run_produces_valid_ledger_and_matching_rewards() {
    let (train, test) = small_dataset();
    let config = small_config(4);
    let result = BflSimulation::new(config).run(&train, &test).unwrap();

    // One block per communication round, none empty, all valid.
    let chain = result.chain.as_ref().expect("FAIR-BFL mines");
    assert_eq!(chain.height() as usize, config.fl.rounds);
    assert_eq!(chain.empty_block_count(), 0);
    chain.validate_all().unwrap();

    // Assumption 2: every block's gradient payload is a single global
    // gradient of the right dimensionality, and the latest one equals the
    // simulation's final parameters.
    for block in chain.iter().skip(1) {
        let (_, payload) = block
            .global_gradient_payload()
            .expect("every round block carries the global gradient");
        let params = gradient::from_bytes(payload).expect("payload is a valid gradient");
        assert_eq!(params.len(), config.fl.model.num_params());
    }
    let (_, latest) = chain.latest_global_gradient().unwrap();
    assert_eq!(gradient::from_bytes(&latest).unwrap(), result.final_params);

    // Reward audit: on-chain totals equal the simulation's bookkeeping, and
    // every round pays out (approximately) the configured base.
    assert_eq!(chain.reward_totals(), result.reward_totals);
    for outcome in &result.outcomes {
        let paid = outcome.rewards_paid_milli as i64;
        let base_milli = (config.reward_base * 1000.0) as i64;
        assert!(
            (paid - base_milli).abs() <= outcome.high_contributors as i64 + 1,
            "round {} paid {paid}, expected ~{base_milli}",
            outcome.round
        );
    }
}

#[test]
fn accuracy_improves_and_delays_accumulate_monotonically() {
    let (train, test) = small_dataset();
    let result = BflSimulation::new(small_config(6))
        .run(&train, &test)
        .unwrap();

    let first = result.history.rounds.first().unwrap();
    let last = result.history.rounds.last().unwrap();
    assert!(
        last.accuracy >= first.accuracy,
        "accuracy should not regress overall: {} -> {}",
        first.accuracy,
        last.accuracy
    );
    assert!(last.accuracy > 0.5, "the task is learnable in a few rounds");

    // The simulated clock is strictly increasing and consistent with the
    // per-round delays.
    let mut expected_elapsed = 0.0;
    for record in &result.history.rounds {
        expected_elapsed += record.round_delay_s;
        assert!((record.elapsed_s - expected_elapsed).abs() < 1e-9);
    }

    // The cumulative-average delay series (Figure 4a's y-axis) has one
    // entry per round and stays positive.
    let series = result.history.cumulative_average_delay();
    assert_eq!(series.len(), 6);
    assert!(series.iter().all(|&d| d > 0.0));
}

#[test]
fn runs_with_the_same_seed_are_bit_identical() {
    let (train, test) = small_dataset();
    let config = small_config(3);
    let a = BflSimulation::new(config).run(&train, &test).unwrap();
    let b = BflSimulation::new(config).run(&train, &test).unwrap();
    assert_eq!(a.final_params, b.final_params);
    assert_eq!(a.history, b.history);
    assert_eq!(a.reward_totals, b.reward_totals);
    assert_eq!(
        a.chain.as_ref().unwrap().tip().hash(),
        b.chain.as_ref().unwrap().tip().hash()
    );
}

#[test]
fn different_seeds_give_different_runs() {
    let (train, test) = small_dataset();
    let mut config_a = small_config(3);
    config_a.fl.seed = 1;
    let mut config_b = small_config(3);
    config_b.fl.seed = 2;
    let a = BflSimulation::new(config_a).run(&train, &test).unwrap();
    let b = BflSimulation::new(config_b).run(&train, &test).unwrap();
    assert_ne!(a.final_params, b.final_params);
}

#[test]
fn theorem_bound_upper_envelopes_the_loss_decay_shape() {
    let (train, test) = small_dataset();
    let mut config = small_config(8);
    config.fl.participation_ratio = 1.0;
    let result = BflSimulation::new(config).run(&train, &test).unwrap();

    let params = TheoremParams {
        clients_per_round: config.fl.selected_per_round(),
        local_epochs: config.fl.local.epochs,
        ..TheoremParams::default()
    };
    let bound = params.bound_series(config.fl.rounds);
    // The bound decreases monotonically; the measured loss decreases overall
    // (not necessarily monotonically, SGD is noisy).
    assert!(bound.windows(2).all(|w| w[1] < w[0]));
    let first_loss = result.outcomes.first().unwrap().train_loss;
    let last_loss = result.outcomes.last().unwrap().train_loss;
    assert!(last_loss < first_loss);
}
