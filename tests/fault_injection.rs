//! Integration tests for the deterministic fault-injection subsystem
//! (PR 6): zero-fault bit-identity with the PR 5 engine, packet loss and
//! client retransmission, duplicate squashing, corruption detection via
//! signature verification, miner crashes, partition-driven forks healed
//! by longest-chain adoption, deadline degradation, and the determinism
//! gate (identical traces and results across runs and sweep thread
//! counts while a fault plan is active).

mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::events::EventKind;
use fair_bfl::core::{
    ProfileConfig, ReorgPolicy, RetryPolicy, Scenario, SimulationResult, StalenessPolicy,
    SweepPoint, SweepRunner, SyncMode,
};
use fair_bfl::fl::config::PartitionKind;
use fair_bfl::net::{CrashSchedule, DelayDistribution, FaultPlan, LinkFaults, Partition};

/// Canonical digest over every artifact the experiments read (the same
/// construction the PR 5 golden tests pin): block hashes, per-round
/// history records (bit-exact), detection rows, reward totals, and the
/// final parameter vector.
fn run_digest(result: &SimulationResult) -> String {
    let mut canon = String::new();
    if let Some(chain) = &result.chain {
        for block in chain.iter() {
            canon.push_str(&block.hash_hex());
            canon.push('\n');
        }
    }
    for r in &result.history.rounds {
        canon.push_str(&format!(
            "round {} acc {:016x} loss {:016x} delay {:016x} elapsed {:016x} n {}\n",
            r.round,
            r.accuracy.to_bits(),
            r.train_loss.to_bits(),
            r.round_delay_s.to_bits(),
            r.elapsed_s.to_bits(),
            r.participants
        ));
    }
    for row in &result.detection.rows {
        canon.push_str(&format!(
            "detect {} attackers {:?} dropped {:?}\n",
            row.round, row.attacker_ids, row.dropped_ids
        ));
    }
    for (client, total) in &result.reward_totals {
        canon.push_str(&format!("reward {client} {total}\n"));
    }
    for p in &result.final_params {
        canon.push_str(&format!("{:016x}", p.to_bits()));
    }
    let digest = fair_bfl::crypto::sha256::sha256(canon.as_bytes());
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// A flexible-quota scenario with an (optional) fault plan, shared by
/// most tests here: 8 clients, full participation, no signatures.
fn faulted_scenario(
    quota: usize,
    rounds: usize,
    fault: FaultPlan,
    retry: RetryPolicy,
    reorg: ReorgPolicy,
) -> Scenario {
    Scenario::builder()
        .clients(8)
        .miners(3)
        .rounds(rounds)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .verify_signatures(false)
        .seed(42)
        .sync(SyncMode::FlexibleQuota { quota })
        .staleness(StalenessPolicy::DecayedInclude { decay: 0.5 })
        .profiles(ProfileConfig {
            uplink: DelayDistribution::Constant(0.05),
            ..ProfileConfig::default()
        })
        .fault(fault)
        .retry(retry)
        .reorg(reorg)
        .build()
        .unwrap()
}

/// Cumulative end-of-round times of a fault-free probe run, used to aim
/// crash and partition windows at specific rounds deterministically.
fn probe_round_ends(quota: usize, rounds: usize) -> Vec<f64> {
    let (train, test) = small_dataset();
    let result = faulted_scenario(
        quota,
        rounds,
        FaultPlan::default(),
        RetryPolicy::None,
        ReorgPolicy::Discard,
    )
    .run(&train, &test)
    .unwrap();
    result.history.rounds.iter().map(|r| r.elapsed_s).collect()
}

/// The inactive fault plan is not allowed to change a single bit: the
/// synchronous path must still reproduce the PR 4/5 golden digest, and
/// the event engine must produce the identical trace and result with and
/// without the (default) plan threaded through the configuration.
#[test]
fn zero_fault_plan_replays_the_pr5_engine_bit_identically() {
    const PR4_BATCHED: &str = "49e74382d7ab1bec34dbf20e11088ad99656afb8b2eb3f2c14036611cc0340dc";

    let (train, test) = small_dataset();

    // Synchronous golden: explicitly threading the default plan through
    // the config reproduces the digest pinned before faults existed.
    let mut config = small_config(3);
    config.fault = FaultPlan::default();
    config.retry = RetryPolicy::None;
    config.reorg = ReorgPolicy::Discard;
    let result = Scenario::from_config(config)
        .unwrap()
        .run(&train, &test)
        .unwrap();
    assert_eq!(
        run_digest(&result),
        PR4_BATCHED,
        "an inactive fault plan must not perturb the synchronous engine"
    );

    // Event engine: a run with the default plan is trace- and
    // digest-identical to the same scenario without fault fields set.
    let baseline = Scenario::builder()
        .clients(8)
        .miners(3)
        .rounds(3)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .verify_signatures(false)
        .seed(42)
        .sync(SyncMode::FlexibleQuota { quota: 6 })
        .staleness(StalenessPolicy::DecayedInclude { decay: 0.5 })
        .profiles(ProfileConfig {
            uplink: DelayDistribution::Constant(0.05),
            ..ProfileConfig::default()
        })
        .build()
        .unwrap();
    let mut base_run = baseline.start(&train, &test).unwrap();
    base_run.run_to_completion().unwrap();
    let base_trace = base_run.event_trace().to_vec();
    let base_digest = run_digest(&base_run.into_result());

    let explicit = faulted_scenario(
        6,
        3,
        FaultPlan::default(),
        RetryPolicy::None,
        ReorgPolicy::Discard,
    );
    let mut run = explicit.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    assert_eq!(
        run.event_trace(),
        &base_trace[..],
        "an inactive plan draws nothing and schedules nothing extra"
    );
    assert_eq!(run_digest(&run.into_result()), base_digest);
}

#[test]
fn dropped_uploads_are_retransmitted_under_the_backoff_policy() {
    let (train, test) = small_dataset();
    let fault = FaultPlan {
        uplink: LinkFaults {
            drop_rate: 0.4,
            ..LinkFaults::default()
        },
        ..FaultPlan::default()
    };
    let retry = RetryPolicy::Backoff {
        max_attempts: 3,
        timeout_s: 1.0,
        base_s: 0.5,
        factor: 2.0,
        jitter_s: 0.2,
    };
    let scenario = faulted_scenario(6, 3, fault, retry, ReorgPolicy::Discard);

    let mut traces = Vec::new();
    let mut digests = Vec::new();
    for _ in 0..2 {
        let mut run = scenario.start(&train, &test).unwrap();
        run.run_to_completion().unwrap();
        traces.push(run.event_trace().to_vec());
        digests.push(run_digest(&run.into_result()));
    }
    assert_eq!(
        traces[0], traces[1],
        "faulted traces replay bit-identically"
    );
    assert_eq!(digests[0], digests[1]);

    let count = |kind: EventKind| traces[0].iter().filter(|e| e.kind == kind).count();
    assert!(count(EventKind::UploadDropped) > 0, "40% loss must strike");
    assert!(
        count(EventKind::UploadRetried) > 0,
        "the backoff policy must retransmit dropped uploads"
    );
    // Retransmission keeps the run learning through the loss.
    assert!(count(EventKind::UploadArrived) > 0);

    // Without retries the same losses are terminal: drops appear, resends
    // do not, and the rounds seal with whatever survived.
    let fatalist = faulted_scenario(
        6,
        3,
        FaultPlan {
            uplink: LinkFaults {
                drop_rate: 0.4,
                ..LinkFaults::default()
            },
            ..FaultPlan::default()
        },
        RetryPolicy::None,
        ReorgPolicy::Discard,
    );
    let mut run = fatalist.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    let trace = run.event_trace().to_vec();
    assert!(trace.iter().any(|e| e.kind == EventKind::UploadDropped));
    assert!(trace.iter().all(|e| e.kind != EventKind::UploadRetried));
    assert_eq!(run.into_result().history.len(), 3);
}

#[test]
fn duplicate_deliveries_are_squashed_and_never_double_count() {
    let (train, test) = small_dataset();
    let fault = FaultPlan {
        uplink: LinkFaults {
            duplicate_rate: 1.0,
            ..LinkFaults::default()
        },
        ..FaultPlan::default()
    };
    let scenario = faulted_scenario(6, 3, fault, RetryPolicy::None, ReorgPolicy::Discard);
    let mut run = scenario.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    let trace = run.event_trace().to_vec();
    let result = run.into_result();

    assert!(
        trace.iter().any(|e| e.kind == EventKind::DuplicateIgnored),
        "every upload is duplicated, so redundant copies must be squashed"
    );
    // No commission is ever admitted twice.
    let mut admitted = std::collections::BTreeSet::new();
    for e in &trace {
        if matches!(e.kind, EventKind::UploadArrived | EventKind::StaleIncluded) {
            assert!(
                admitted.insert((e.born_round, e.client_id)),
                "client {} round {} admitted twice",
                e.client_id,
                e.born_round
            );
        }
    }
    // Every round still seals at most one upload per client.
    for outcome in &result.outcomes {
        assert!(outcome.participants <= 8);
    }
    assert_eq!(result.history.len(), 3);
}

#[test]
fn corrupted_uploads_are_rejected_by_the_signature_check() {
    let (train, test) = small_dataset();
    let fault = FaultPlan {
        uplink: LinkFaults {
            corrupt_rate: 0.5,
            ..LinkFaults::default()
        },
        ..FaultPlan::default()
    };
    let scenario = Scenario::builder()
        .clients(6)
        .miners(2)
        .rounds(3)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .verify_signatures(true)
        .rsa_modulus_bits(256)
        .seed(11)
        .sync(SyncMode::FlexibleQuota { quota: 4 })
        .profiles(ProfileConfig {
            uplink: DelayDistribution::Constant(0.05),
            ..ProfileConfig::default()
        })
        .fault(fault)
        .retry(RetryPolicy::Backoff {
            max_attempts: 2,
            timeout_s: 1.0,
            base_s: 0.5,
            factor: 2.0,
            jitter_s: 0.0,
        })
        .build()
        .unwrap();

    let mut run = scenario.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    let trace = run.event_trace().to_vec();
    let result = run.into_result();

    assert!(
        trace.iter().any(|e| e.kind == EventKind::UploadRejected),
        "flipped payload bytes must fail miner-side verification"
    );
    assert!(
        trace.iter().any(|e| e.kind == EventKind::UploadRetried),
        "rejected attempts retransmit under the backoff policy"
    );
    assert_eq!(result.history.len(), 3);
    result.chain.as_ref().unwrap().validate_all().unwrap();
}

#[test]
fn a_miner_crash_loses_its_pool_and_the_mesh_recovers() {
    let (train, test) = small_dataset();
    let quota = 6;
    let rounds = 4;
    let ends = probe_round_ends(quota, rounds);
    // Crash miner 1 just after round 1 seals; it stays down for about one
    // round and recovers before the run ends.
    let crash = CrashSchedule {
        miner: 1,
        crash_at_s: ends[0] * 0.5,
        down_for_s: (ends[1] - ends[0] * 0.5) + 0.5,
    };
    let fault = FaultPlan {
        crash: Some(crash),
        ..FaultPlan::default()
    };
    let retry = RetryPolicy::Backoff {
        max_attempts: 3,
        timeout_s: 0.5,
        base_s: 0.5,
        factor: 2.0,
        jitter_s: 0.1,
    };
    let scenario = faulted_scenario(quota, rounds, fault, retry, ReorgPolicy::Discard);

    let mut digests = Vec::new();
    let mut trace = Vec::new();
    for _ in 0..2 {
        let mut run = scenario.start(&train, &test).unwrap();
        run.run_to_completion().unwrap();
        trace = run.event_trace().to_vec();
        digests.push(run_digest(&run.into_result()));
    }
    assert_eq!(digests[0], digests[1], "crash runs replay bit-identically");

    // The downed miner swallows or loses uploads somewhere in the run.
    assert!(
        trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::UploadDropped | EventKind::UploadLost)),
        "a crash mid-run must cost at least one upload"
    );
    // The run survives the crash: every round seals, the chain is whole.
    let result = scenario.run(&train, &test).unwrap();
    assert_eq!(result.history.len(), rounds);
    let chain = result.chain.as_ref().unwrap();
    assert_eq!(chain.height(), rounds as u64);
    chain.validate_all().unwrap();
}

/// The acceptance scenario: a partition splits the 3-miner mesh, both
/// components mine their own branch (a real fork), and the first round
/// after the window heals it by longest-chain adoption — one tip, the
/// losing branch's uploads salvaged through the staleness policy, and
/// the resolution cost charged as `T_fork`.
#[test]
fn a_partition_forks_the_mesh_and_heals_to_one_tip() {
    let (train, test) = small_dataset();
    let quota = 8;
    let rounds = 5;
    let ends = probe_round_ends(quota, rounds);
    // Split {0, 1} | {2} for rounds 2-3; heal lands in a later prologue.
    let partition = Partition {
        start_s: ends[0] + 0.01,
        duration_s: ends[2] - ends[0],
        boundary: 2,
    };
    let fault = FaultPlan {
        partition: Some(partition),
        ..FaultPlan::default()
    };
    let scenario = faulted_scenario(
        quota,
        rounds,
        fault,
        RetryPolicy::None,
        ReorgPolicy::Salvage,
    );

    let mut digests = Vec::new();
    let mut traces = Vec::new();
    for _ in 0..2 {
        let mut run = scenario.start(&train, &test).unwrap();
        run.run_to_completion().unwrap();
        traces.push(run.event_trace().to_vec());
        digests.push(run_digest(&run.into_result()));
    }
    assert_eq!(
        traces[0], traces[1],
        "partition runs replay bit-identically"
    );
    assert_eq!(digests[0], digests[1]);

    let trace = &traces[0];
    assert!(
        trace.iter().any(|e| e.kind == EventKind::UploadStranded),
        "uploads associated with miner 2 must strand on the secondary side"
    );
    assert!(
        trace.iter().any(|e| e.kind == EventKind::ForkHealed),
        "the split mesh must produce a fork that heals"
    );

    let result = scenario.run(&train, &test).unwrap();
    // The fork's resolution cost lands in exactly the heal round.
    let fork_rounds: Vec<&fair_bfl::core::RoundOutcome> = result
        .outcomes
        .iter()
        .filter(|o| o.breakdown.t_fork > 0.0)
        .collect();
    assert_eq!(fork_rounds.len(), 1, "one heal, one T_fork charge");
    // Healed to a single valid tip of exactly one block per round: the
    // secondary branch's blocks were orphaned away.
    let chain = result.chain.as_ref().unwrap();
    assert_eq!(chain.height(), rounds as u64);
    chain.validate_all().unwrap();
    // Salvage pushed the stranded uploads through the staleness policy
    // into a post-heal block.
    let salvage_visible = result.outcomes.iter().any(|o| o.stale_included > 0)
        || trace.iter().any(|e| e.kind == EventKind::StaleDiscarded);
    assert!(
        salvage_visible,
        "the losing branch's uploads must pass through the reorg policy"
    );
}

#[test]
fn the_fault_deadline_seals_short_rounds_instead_of_waiting() {
    let (train, test) = small_dataset();
    // Every client must report (quota = 8) but a quarter of them are 8x
    // stragglers; without a deadline each round waits for them.
    let patient = Scenario::builder()
        .clients(8)
        .miners(2)
        .rounds(3)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .verify_signatures(false)
        .seed(42)
        .sync(SyncMode::FlexibleQuota { quota: 8 })
        .staleness(StalenessPolicy::DecayedInclude { decay: 0.5 })
        .profiles(ProfileConfig {
            straggler_slowdown: 8.0,
            straggler_fraction: 0.25,
            uplink: DelayDistribution::Constant(0.05),
            ..ProfileConfig::default()
        })
        .build()
        .unwrap();
    let patient_result = patient.run(&train, &test).unwrap();
    let round1_s = patient_result.history.rounds[0].elapsed_s;

    let mut hurried_config = *patient.config();
    hurried_config.fault = FaultPlan {
        deadline_s: round1_s * 0.5,
        ..FaultPlan::default()
    };
    let hurried = Scenario::from_config(hurried_config).unwrap();
    let mut run = hurried.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    let trace = run.event_trace().to_vec();
    let result = run.into_result();

    assert!(
        trace.iter().any(|e| e.kind == EventKind::DeadlineSealed),
        "the deadline must cut at least one round short"
    );
    assert!(
        result.outcomes.iter().any(|o| o.participants < 8),
        "a deadline-sealed round carries fewer than all uploads"
    );
    let makespan = |r: &SimulationResult| r.history.rounds.last().unwrap().elapsed_s;
    assert!(
        makespan(&result) < makespan(&patient_result),
        "sealing at the deadline must undercut the straggler-gated makespan"
    );
}

/// The satellite determinism gate: with an active fault plan, sweeps are
/// bit-identical across thread counts — fault streams are per-run, so
/// parallelism cannot leak into the coin-flips.
#[test]
fn faulted_sweeps_are_bit_identical_for_any_thread_count() {
    let (train, test) = small_dataset();
    let loss = FaultPlan {
        uplink: LinkFaults {
            drop_rate: 0.3,
            duplicate_rate: 0.2,
            ..LinkFaults::default()
        },
        ..FaultPlan::default()
    };
    let retry = RetryPolicy::Backoff {
        max_attempts: 2,
        timeout_s: 0.5,
        base_s: 0.5,
        factor: 2.0,
        jitter_s: 0.1,
    };
    let split = FaultPlan {
        partition: Some(Partition {
            start_s: 2.0,
            duration_s: 25.0,
            boundary: 2,
        }),
        ..FaultPlan::default()
    };
    let grid: Vec<SweepPoint> = vec![
        SweepPoint::new(
            "loss-retry",
            faulted_scenario(6, 2, loss, retry, ReorgPolicy::Discard),
        ),
        SweepPoint::new(
            "partition-salvage",
            faulted_scenario(8, 3, split, RetryPolicy::None, ReorgPolicy::Salvage),
        ),
        SweepPoint::new(
            "fault-free",
            faulted_scenario(
                6,
                2,
                FaultPlan::default(),
                RetryPolicy::None,
                ReorgPolicy::Discard,
            ),
        ),
    ];

    let serial = SweepRunner::with_threads(1)
        .run(&grid, &train, &test)
        .unwrap();
    for threads in [0usize, 2, 3] {
        let cells = SweepRunner::with_threads(threads)
            .run(&grid, &train, &test)
            .unwrap();
        assert_eq!(cells.len(), serial.len());
        for (a, b) in serial.iter().zip(cells.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                run_digest(&a.result),
                run_digest(&b.result),
                "cell `{}` must not depend on sweep parallelism",
                a.label
            );
        }
    }
}
