//! Integration tests for the event-driven round engine (PR 5): the
//! synchronous mode's bit-identity with the PR 4 engine, the determinism
//! of flexible-quota runs (event traces and sweep thread-invariance), the
//! flexible block quota's straggler behaviour, staleness policies, and
//! churn schedules.

mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::events::EventKind;
use fair_bfl::core::{
    ProfileConfig, Scenario, SimulationResult, StalenessPolicy, SweepPoint, SweepRunner, SyncMode,
};
use fair_bfl::fl::config::PartitionKind;
use fair_bfl::net::DelayDistribution;
use std::sync::Mutex;

/// The batched/reference engine switches are process-global; tests that
/// flip them serialize through this lock.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Canonical digest over every artifact the experiments read: block
/// hashes, per-round history records (bit-exact), detection rows, reward
/// totals, and the final parameter vector.
fn run_digest(result: &SimulationResult) -> String {
    let mut canon = String::new();
    if let Some(chain) = &result.chain {
        for block in chain.iter() {
            canon.push_str(&block.hash_hex());
            canon.push('\n');
        }
    }
    for r in &result.history.rounds {
        canon.push_str(&format!(
            "round {} acc {:016x} loss {:016x} delay {:016x} elapsed {:016x} n {}\n",
            r.round,
            r.accuracy.to_bits(),
            r.train_loss.to_bits(),
            r.round_delay_s.to_bits(),
            r.elapsed_s.to_bits(),
            r.participants
        ));
    }
    for row in &result.detection.rows {
        canon.push_str(&format!(
            "detect {} attackers {:?} dropped {:?}\n",
            row.round, row.attacker_ids, row.dropped_ids
        ));
    }
    for (client, total) in &result.reward_totals {
        canon.push_str(&format!("reward {client} {total}\n"));
    }
    for p in &result.final_params {
        canon.push_str(&format!("{:016x}", p.to_bits()));
    }
    let digest = fair_bfl::crypto::sha256::sha256(canon.as_bytes());
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// The synchronous mode (the degenerate case of the event-driven
/// redesign: zero delays, quota = all participants) must stay
/// bit-identical to the PR 4 step engine. The digests below were captured
/// on the PR 4 engine *before* this refactor landed, over every artifact
/// the experiments read — history, detection rows, reward totals, final
/// parameters, and every block hash — in both engine modes.
#[test]
fn synchronous_mode_is_bit_identical_to_the_pr4_engine_in_both_engine_modes() {
    const PR4_BATCHED: &str = "49e74382d7ab1bec34dbf20e11088ad99656afb8b2eb3f2c14036611cc0340dc";
    const PR4_REFERENCE: &str = "4ddc2d5d580a1fa38e2007973e80841fcc26d8751e88380b8a3b84a391ebcbcc";

    let _guard = lock();
    let (train, test) = small_dataset();
    let config = small_config(3);
    assert!(config.sync.is_synchronous(), "the default mode is lockstep");

    for (reference, expected) in [(false, PR4_BATCHED), (true, PR4_REFERENCE)] {
        fair_bfl::ml::engine::set_reference_mode(reference);
        fair_bfl::crypto::engine::set_reference_mode(reference);
        let result = Scenario::from_config(config)
            .unwrap()
            .run(&train, &test)
            .unwrap();
        fair_bfl::ml::engine::set_reference_mode(false);
        fair_bfl::crypto::engine::set_reference_mode(false);
        assert_eq!(
            run_digest(&result),
            expected,
            "synchronous run diverged from the PR 4 engine (reference={reference})"
        );
        assert!(result.outcomes.iter().all(|o| o.stale_included == 0));
    }
}

/// A heterogeneous scenario: stragglers, jitter-free but non-zero uplink
/// latency, full participation.
fn straggler_scenario(quota: usize, staleness: StalenessPolicy, rounds: usize) -> Scenario {
    Scenario::builder()
        .clients(8)
        .rounds(rounds)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .verify_signatures(false)
        .seed(42)
        .sync(SyncMode::FlexibleQuota { quota })
        .staleness(staleness)
        .profiles(ProfileConfig {
            straggler_slowdown: 8.0,
            straggler_fraction: 0.25,
            uplink: DelayDistribution::Constant(0.05),
            ..ProfileConfig::default()
        })
        .build()
        .unwrap()
}

#[test]
fn flexible_quota_runs_are_deterministic_with_identical_event_traces() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let scenario = straggler_scenario(6, StalenessPolicy::DecayedInclude { decay: 0.5 }, 3);

    let mut traces = Vec::new();
    let mut digests = Vec::new();
    for _ in 0..2 {
        let mut run = scenario.start(&train, &test).unwrap();
        run.run_to_completion().unwrap();
        traces.push(run.event_trace().to_vec());
        digests.push(run_digest(&run.into_result()));
    }
    assert!(!traces[0].is_empty(), "flexible runs schedule events");
    assert_eq!(traces[0], traces[1], "the event trace is deterministic");
    assert_eq!(digests[0], digests[1], "the run result is deterministic");
}

#[test]
fn flexible_sweeps_are_bit_identical_for_any_thread_count() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let grid: Vec<SweepPoint> = [
        ("quota-8", 8),
        ("quota-6", 6),
        ("quota-4", 4),
        ("quota-3", 3),
        ("quota-2", 2),
    ]
    .into_iter()
    .map(|(label, quota)| {
        SweepPoint::new(
            label,
            straggler_scenario(quota, StalenessPolicy::DecayedInclude { decay: 0.5 }, 2),
        )
    })
    .collect();

    let serial = SweepRunner::with_threads(1)
        .run(&grid, &train, &test)
        .unwrap();
    for threads in [0usize, 2, 3] {
        let cells = SweepRunner::with_threads(threads)
            .run(&grid, &train, &test)
            .unwrap();
        assert_eq!(cells.len(), serial.len());
        for (a, b) in serial.iter().zip(cells.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                run_digest(&a.result),
                run_digest(&b.result),
                "cell `{}` must not depend on sweep parallelism",
                a.label
            );
        }
    }
}

#[test]
fn flexible_quota_seals_blocks_without_waiting_for_stragglers() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let rounds = 4;
    // Quota = all participants: every block waits for the 8x straggler.
    let waiting = straggler_scenario(8, StalenessPolicy::Discard, rounds)
        .run(&train, &test)
        .unwrap();
    // Quota of six: blocks seal once the fast clients have reported.
    let flexible = straggler_scenario(6, StalenessPolicy::Discard, rounds)
        .run(&train, &test)
        .unwrap();

    let makespan = |r: &SimulationResult| r.history.rounds.last().unwrap().elapsed_s;
    assert!(
        makespan(&flexible) < makespan(&waiting),
        "the flexible quota must undercut the straggler-gated makespan \
         ({:.2}s vs {:.2}s)",
        makespan(&flexible),
        makespan(&waiting)
    );
    // Both modes still learn and still seal one block per round.
    assert_eq!(waiting.chain.as_ref().unwrap().height(), rounds as u64);
    assert_eq!(flexible.chain.as_ref().unwrap().height(), rounds as u64);
    flexible.chain.as_ref().unwrap().validate_all().unwrap();
    assert!(flexible.final_accuracy().unwrap() > 0.3);
}

#[test]
fn staleness_policies_govern_what_late_uploads_contribute() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let rounds = 4;

    // Discard: stragglers' late uploads are dropped on arrival; no block
    // ever carries a stale gradient.
    let discard = straggler_scenario(6, StalenessPolicy::Discard, rounds);
    let mut run = discard.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    let discard_trace = run.event_trace().to_vec();
    let discard_result = run.into_result();
    assert!(discard_result
        .outcomes
        .iter()
        .all(|o| o.stale_included == 0));
    assert!(
        discard_trace
            .iter()
            .any(|e| e.kind == EventKind::StaleDiscarded),
        "the 8x stragglers must miss the quota and arrive stale"
    );

    // DecayedInclude: the same stragglers are carried into later blocks.
    let include = straggler_scenario(6, StalenessPolicy::DecayedInclude { decay: 0.5 }, rounds);
    let mut run = include.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    let include_trace = run.event_trace().to_vec();
    let include_result = run.into_result();
    assert!(
        include_trace
            .iter()
            .any(|e| e.kind == EventKind::StaleIncluded),
        "decayed stale uploads enter later blocks"
    );
    let carried: usize = include_result
        .outcomes
        .iter()
        .map(|o| o.stale_included)
        .sum();
    assert!(carried > 0, "at least one block aggregates a stale upload");
    // The carried gradients change the trajectory relative to discarding.
    assert_ne!(discard_result.final_params, include_result.final_params);
}

#[test]
fn churn_schedules_gate_selection_and_can_lose_in_flight_uploads() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let rounds = 6;
    let scenario = Scenario::builder()
        .clients(6)
        .rounds(rounds)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .verify_signatures(false)
        .seed(7)
        .sync(SyncMode::FlexibleQuota { quota: 4 })
        .profiles(ProfileConfig {
            churn_fraction: 0.5,
            churn_online_s: 4.0,
            churn_offline_s: 50.0,
            ..ProfileConfig::default()
        })
        .build()
        .unwrap();

    let mut run = scenario.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    let trace = run.event_trace().to_vec();
    let result = run.into_result();
    assert_eq!(result.history.len(), rounds);

    // Offline clients are never selected: every scheduled pass respects
    // the profile's churn schedule.
    let profiles = scenario.config().profiles.build_profiles(6);
    for event in &trace {
        if event.kind == EventKind::TrainingScheduled {
            assert!(
                profiles[event.client_id as usize].is_online(event.time_s),
                "client {} was scheduled while offline at t={}",
                event.client_id,
                event.time_s
            );
        }
    }
    // The churners (clients 0-2) leave within seconds and stay away for
    // 50 simulated seconds, so they must miss rounds.
    let scheduled_rounds = |client: u64| {
        trace
            .iter()
            .filter(|e| e.kind == EventKind::TrainingScheduled && e.client_id == client)
            .count()
    };
    assert!(
        scheduled_rounds(0) < rounds,
        "churned client 0 participates in fewer than {rounds} rounds"
    );
    // The always-on clients participate far more often than the churners
    // (they can still sit out a selection while an earlier upload of
    // theirs is in flight beyond the quota).
    assert!(
        scheduled_rounds(0) < scheduled_rounds(5),
        "churned client 0 ({}) must participate less than always-on client 5 ({})",
        scheduled_rounds(0),
        scheduled_rounds(5)
    );
}

#[test]
fn a_fully_churning_population_fast_forwards_instead_of_aborting() {
    let _guard = lock();
    let (train, test) = small_dataset();
    // Every client churns with overlapping offline windows: rounds whose
    // start lands in an all-offline window must fast-forward the clock
    // to the next rejoin (the dynamic-join property), not abort the run.
    let rounds = 5;
    let scenario = Scenario::builder()
        .clients(4)
        .rounds(rounds)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .verify_signatures(false)
        .seed(11)
        .sync(SyncMode::FlexibleQuota { quota: 2 })
        .profiles(ProfileConfig {
            churn_fraction: 1.0,
            churn_online_s: 2.0,
            churn_offline_s: 3.0,
            ..ProfileConfig::default()
        })
        .build()
        .unwrap();
    let mut run = scenario.start(&train, &test).unwrap();
    run.run_to_completion().unwrap();
    let trace = run.event_trace().to_vec();
    let result = run.into_result();
    assert_eq!(result.history.len(), rounds, "no round aborts");
    // Scheduling still respects every churn schedule.
    let profiles = scenario.config().profiles.build_profiles(4);
    for event in &trace {
        if event.kind == EventKind::TrainingScheduled {
            assert!(profiles[event.client_id as usize].is_online(event.time_s));
        }
    }
}

#[test]
fn flexible_quota_works_with_signatures_and_in_fl_only_mode() {
    let _guard = lock();
    let (train, test) = small_dataset();

    // Signatures on: uploads are signed by the client, verified at the
    // miner's mempool, and the sealed chain validates.
    let mut config = small_config(2);
    config.sync = SyncMode::FlexibleQuota { quota: 3 };
    let signed = Scenario::from_config(config)
        .unwrap()
        .run(&train, &test)
        .unwrap();
    assert_eq!(signed.history.len(), 2);
    let chain = signed.chain.as_ref().unwrap();
    assert_eq!(chain.height(), 2);
    chain.validate_all().unwrap();
    assert!(signed
        .outcomes
        .iter()
        .all(|o| o.participants == 3 && o.block_hash.is_some()));

    // FL-only: the aggregator fires at the quota without any chain.
    let mut config = small_config(2);
    config.mode = fair_bfl::core::FlexibilityMode::FlOnly;
    config.verify_signatures = false;
    config.sync = SyncMode::FlexibleQuota { quota: 3 };
    let fl_only = Scenario::from_config(config)
        .unwrap()
        .run(&train, &test)
        .unwrap();
    assert!(fl_only.chain.is_none());
    assert!(fl_only
        .outcomes
        .iter()
        .all(|o| o.participants == 3 && o.block_hash.is_none() && o.breakdown.t_bl == 0.0));
}
