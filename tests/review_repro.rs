mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::{
    BflSimulation, ProfileConfig, ReorgPolicy, RetryPolicy, Scenario, StalenessPolicy, SyncMode,
};
use fair_bfl::fl::config::PartitionKind;
use fair_bfl::net::{DelayDistribution, FaultPlan, LinkFaults, TimeWindow};

#[test]
fn identical_configs_reproduce_the_run_exactly() {
    let (train, test) = small_dataset();
    let config = small_config(2);
    let first = BflSimulation::new(config).run(&train, &test).unwrap();
    let second = BflSimulation::new(config).run(&train, &test).unwrap();
    assert_eq!(first.final_params, second.final_params);
    assert_eq!(first.reward_totals, second.reward_totals);
}

#[test]
fn total_loss_without_retry_does_not_panic() {
    let (train, test) = small_dataset();
    let fault = FaultPlan {
        uplink: LinkFaults {
            drop_rate: 1.0,
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
            window: TimeWindow::default(),
        },
        crash: None,
        partition: None,
        deadline_s: 0.0,
    };
    let scenario = Scenario::builder()
        .clients(8)
        .miners(3)
        .rounds(2)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .verify_signatures(false)
        .seed(42)
        .sync(SyncMode::FlexibleQuota { quota: 3 })
        .staleness(StalenessPolicy::DecayedInclude { decay: 0.5 })
        .profiles(ProfileConfig {
            uplink: DelayDistribution::Constant(0.05),
            ..ProfileConfig::default()
        })
        .fault(fault)
        .retry(RetryPolicy::None)
        .reorg(ReorgPolicy::Discard)
        .build()
        .unwrap();
    // Expectation: a graceful error (e.g. EmptyRound), not a panic.
    let result = scenario.run(&train, &test);
    eprintln!(
        "outcome: {:?}",
        result.as_ref().map(|_| "ok").map_err(|e| e.to_string())
    );
}
