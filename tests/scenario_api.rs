//! Integration tests for the Scenario API: the builder's typed
//! validation, the stepwise engine's equivalence with the one-shot
//! driver, streaming observers, pluggable reward policies, and the
//! parallel sweep runner — all exercised through the facade crate.

mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::reward::RewardEntry;
use fair_bfl::core::{
    AggregationAnchor, BflSimulation, CoreError, FlexibilityMode, ObserverControl, RewardPolicy,
    RoundEvent, RoundObserver, Scenario, SimulationResult, SweepPoint, SweepRunner,
};
use std::sync::Mutex;

/// The batched/reference engine switches are process-global; tests that
/// flip them (or compare two runs bit-for-bit) serialize through this
/// lock so a concurrent flip cannot land between their runs.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Asserts two results are bit-identical in every artifact the paper's
/// experiments read: history, detection table, reward totals, final
/// parameters, and the sealed chain.
fn assert_bit_identical(a: &SimulationResult, b: &SimulationResult) {
    assert_eq!(a.history, b.history);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.detection, b.detection);
    assert_eq!(a.reward_totals, b.reward_totals);
    assert_eq!(a.final_params, b.final_params);
    let hashes = |r: &SimulationResult| {
        r.chain
            .as_ref()
            .map(|c| c.iter().map(|block| block.hash_hex()).collect::<Vec<_>>())
    };
    assert_eq!(hashes(a), hashes(b));
}

#[test]
fn step_driven_run_is_bit_identical_to_one_shot_run_in_both_engine_modes() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let config = small_config(3);
    let scenario = Scenario::from_config(config).unwrap();

    for reference in [false, true] {
        fair_bfl::ml::engine::set_reference_mode(reference);
        fair_bfl::crypto::engine::set_reference_mode(reference);

        // The one-shot legacy driver...
        let one_shot = BflSimulation::new(config).run(&train, &test).unwrap();
        // ...and an explicitly step()-driven run of the same scenario.
        let mut run = scenario.start(&train, &test).unwrap();
        let mut rounds = 0;
        while let Some(outcome) = run.step().unwrap() {
            rounds += 1;
            assert_eq!(outcome.round, rounds);
            assert_eq!(run.rounds_completed(), rounds);
        }
        let stepped = run.into_result();

        fair_bfl::ml::engine::set_reference_mode(false);
        fair_bfl::crypto::engine::set_reference_mode(false);

        assert_eq!(rounds, config.fl.rounds);
        assert_bit_identical(&one_shot, &stepped);
    }
}

#[test]
fn observers_stream_rounds_and_can_stop_early() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let scenario = Scenario::from_config(small_config(5)).unwrap();

    // A closure observer sees every round in order, with the sealed block.
    let mut seen = Vec::new();
    let mut watch = |event: &RoundEvent<'_>| {
        assert_eq!(
            event.block.map(|b| b.hash_hex()),
            event.outcome.block_hash.clone(),
            "the event's block is the one the outcome references"
        );
        assert!(event.detection.is_some(), "learning modes run Algorithm 2");
        seen.push(event.outcome.round);
    };
    let full = scenario.run_observed(&train, &test, &mut watch).unwrap();
    assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    assert_eq!(full.history.len(), 5);

    // A stopping observer truncates the run after its round.
    struct StopAfter(usize);
    impl RoundObserver for StopAfter {
        fn on_round(&mut self, event: &RoundEvent<'_>) -> ObserverControl {
            if event.outcome.round >= self.0 {
                ObserverControl::Stop
            } else {
                ObserverControl::Continue
            }
        }
    }
    let stopped = scenario
        .run_observed(&train, &test, &mut StopAfter(2))
        .unwrap();
    assert_eq!(stopped.history.len(), 2);
    assert_eq!(stopped.chain.as_ref().unwrap().height(), 2);
    // The completed prefix matches the full run exactly.
    assert_eq!(stopped.history.rounds, full.history.rounds[..2]);
}

#[test]
fn custom_reward_policies_reach_the_ledger() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let scenario = Scenario::from_config(small_config(3)).unwrap();

    /// Pays a flat 2 units to every high contributor, whatever its θ.
    struct FlatReward;
    impl RewardPolicy for FlatReward {
        fn round_rewards(&self, _round: usize, scores: &[(u64, f64)]) -> Vec<RewardEntry> {
            scores
                .iter()
                .map(|&(client_id, theta)| RewardEntry {
                    client_id,
                    theta,
                    share: 1.0 / scores.len() as f64,
                    amount_milli: 2_000,
                })
                .collect()
        }
    }

    let result = scenario
        .run_with_reward(&train, &test, Box::new(FlatReward))
        .unwrap();
    assert!(result
        .reward_totals
        .values()
        .all(|&total| total % 2_000 == 0));
    // The flat payouts are what the blocks actually record.
    let chain = result.chain.as_ref().unwrap();
    assert_eq!(chain.reward_totals(), result.reward_totals);
    for outcome in &result.outcomes {
        assert_eq!(
            outcome.rewards_paid_milli,
            2_000 * outcome.high_contributors as u64
        );
    }
}

#[test]
fn sweep_runner_is_order_stable_and_thread_invariant_through_the_facade() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let base = small_config(2);
    let grid: Vec<SweepPoint> = vec![
        ("mean", AggregationAnchor::Mean),
        ("median", AggregationAnchor::Median),
        (
            "trimmed",
            AggregationAnchor::TrimmedMean { trim_ratio: 0.2 },
        ),
    ]
    .into_iter()
    .map(|(label, anchor)| {
        let mut config = base;
        config.anchor = anchor;
        config.verify_signatures = false;
        SweepPoint::new(label, Scenario::from_config(config).unwrap())
    })
    .collect();

    let serial = SweepRunner::with_threads(1)
        .run(&grid, &train, &test)
        .unwrap();
    let parallel = SweepRunner::new().run(&grid, &train, &test).unwrap();
    assert_eq!(serial.len(), 3);
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(a.label, b.label);
        assert_bit_identical(&a.result, &b.result);
    }
    // Each cell equals its standalone run (seed isolation).
    for (point, cell) in grid.iter().zip(serial.iter()) {
        let standalone = point.scenario.run(&train, &test).unwrap();
        assert_bit_identical(&standalone, &cell.result);
    }
}

#[test]
fn chain_only_scenarios_step_too() {
    let _guard = lock();
    let (train, test) = small_dataset();
    let scenario = Scenario::builder()
        .mode(FlexibilityMode::ChainOnly)
        .clients(10)
        .rounds(2)
        .build()
        .unwrap();
    let mut run = scenario.start(&train, &test).unwrap();
    let mut blocks = Vec::new();
    while let Some(outcome) = run.step().unwrap() {
        blocks.push(outcome.block_hash.expect("chain-only seals blocks"));
    }
    assert_eq!(blocks.len(), 2);
    let result = run.into_result();
    assert_eq!(result.final_accuracy(), Some(0.0));
    assert!(result.final_params.is_empty());
    result.chain.as_ref().unwrap().validate_all().unwrap();
}

#[test]
fn invalid_scenarios_surface_typed_errors_through_the_facade() {
    let err = Scenario::builder().rounds(0).build().unwrap_err();
    assert!(matches!(err, CoreError::InvalidConfig(_)));
    let err = Scenario::builder()
        .attack(fair_bfl::core::AttackConfig {
            enabled: true,
            min_attackers: 5,
            max_attackers: 2,
            kind: fair_bfl::fl::attack::AttackKind::SignFlip,
        })
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("attacker range inverted"));
}
