//! Integration tests for the security mechanism: malicious clients forging
//! gradients are identified by Algorithm 2 and excluded by the discard
//! strategy, and the model survives the attack (Table 2 / Section 5.4).

mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::{AttackConfig, BflSimulation, LowContributionStrategy};
use fair_bfl::fl::attack::AttackKind;
use fair_bfl::fl::config::PartitionKind;

fn attacked_config(rounds: usize, partition: PartitionKind) -> fair_bfl::core::BflConfig {
    let mut config = small_config(rounds);
    config.fl.partition = partition;
    config.fl.participation_ratio = 1.0;
    config.strategy = LowContributionStrategy::Discard;
    config.attack = AttackConfig::table2();
    config
}

#[test]
fn sign_flip_attackers_are_detected_at_a_high_rate() {
    let (train, test) = small_dataset();
    let config = attacked_config(6, PartitionKind::Iid);
    let result = BflSimulation::new(config).run(&train, &test).unwrap();

    assert_eq!(result.detection.len(), 6);
    let (total, caught) = result.detection.totals();
    assert!(total >= 6, "at least one attacker per round");
    let rate = result.detection.average_detection_rate();
    assert!(
        rate >= 0.6,
        "detection rate should be high for blatant forgeries: {rate} ({caught}/{total})"
    );
}

#[test]
fn detection_works_under_non_iid_too_and_iid_is_not_worse() {
    let (train, test) = small_dataset();
    let non_iid = attacked_config(
        6,
        PartitionKind::ShardNonIid {
            shards_per_client: 2,
        },
    );
    let iid = attacked_config(6, PartitionKind::Iid);

    let non_iid_rate = BflSimulation::new(non_iid)
        .run(&train, &test)
        .unwrap()
        .detection
        .average_detection_rate();
    let iid_rate = BflSimulation::new(iid)
        .run(&train, &test)
        .unwrap()
        .detection
        .average_detection_rate();

    assert!(
        non_iid_rate > 0.3,
        "non-IID detection still works: {non_iid_rate}"
    );
    // The paper reports IID detection >= non-IID detection; allow a small
    // slack because these are short stochastic runs.
    assert!(
        iid_rate + 0.2 >= non_iid_rate,
        "IID ({iid_rate}) should not be substantially worse than non-IID ({non_iid_rate})"
    );
}

#[test]
fn discarding_protects_accuracy_against_poisoning() {
    let (train, test) = small_dataset();

    // Same attack, with and without the discard defence. A single attacker
    // per round uploads a large negatively-scaled update: under plain
    // averaging it drags the model backwards and stalls learning, while
    // Algorithm 2 + discard isolates it. The factor stays inside the
    // defence's operating envelope: Algorithm 2 anchors on the average
    // gradient, and a scaling much past the honest head-count corrupts
    // the anchor itself (the attacker's amplified deviation dominates the
    // mean), collapsing clustering into the keep-everyone fallback. At
    // -5x detection is reliably 100% across seeds while plain averaging
    // still loses half its accuracy.
    let mut defended = attacked_config(6, PartitionKind::Iid);
    defended.attack.kind = AttackKind::Scaling { factor: -5.0 };
    defended.attack.min_attackers = 1;
    defended.attack.max_attackers = 1;
    let mut undefended = defended;
    undefended.strategy = LowContributionStrategy::Keep;
    undefended.fair_aggregation = false;

    let defended_result = BflSimulation::new(defended).run(&train, &test).unwrap();
    let undefended_result = BflSimulation::new(undefended).run(&train, &test).unwrap();

    assert!(
        defended_result.final_accuracy() > undefended_result.final_accuracy(),
        "discarding should protect the model: defended {:.3} vs undefended {:.3}",
        defended_result.final_accuracy(),
        undefended_result.final_accuracy()
    );
    assert!(
        defended_result.final_accuracy() > 0.5,
        "defended run should keep learning: accuracy {:.3}",
        defended_result.final_accuracy()
    );
}

#[test]
fn attackers_that_are_caught_earn_no_rewards_that_round() {
    let (train, test) = small_dataset();
    let config = attacked_config(5, PartitionKind::Iid);
    let result = BflSimulation::new(config).run(&train, &test).unwrap();

    // For every round, any attacker listed in the dropped set must not have
    // received a reward in that round's block.
    let chain = result.chain.as_ref().unwrap();
    for outcome in &result.outcomes {
        let block = chain.block_at(outcome.round as u64).unwrap();
        let rewarded: Vec<u64> = block
            .transactions
            .iter()
            .filter_map(|tx| match &tx.kind {
                fair_bfl::chain::TransactionKind::Reward { client_id, .. } => Some(*client_id),
                _ => None,
            })
            .collect();
        for dropped in &outcome.dropped {
            assert!(
                !rewarded.contains(dropped),
                "round {}: dropped client {} must not be rewarded",
                outcome.round,
                dropped
            );
        }
    }
}
