//! Integration tests for the security mechanism: malicious clients forging
//! gradients are identified by Algorithm 2 and excluded by the discard
//! strategy, and the model survives the attack (Table 2 / Section 5.4).

mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::{
    AggregationAnchor, AttackConfig, BflSimulation, LowContributionStrategy, Scenario,
};
use fair_bfl::fl::attack::AttackKind;
use fair_bfl::fl::config::PartitionKind;

fn attacked_config(rounds: usize, partition: PartitionKind) -> fair_bfl::core::BflConfig {
    let mut config = small_config(rounds);
    config.fl.partition = partition;
    config.fl.participation_ratio = 1.0;
    config.strategy = LowContributionStrategy::Discard;
    config.attack = AttackConfig::table2();
    config
}

#[test]
fn sign_flip_attackers_are_detected_at_a_high_rate() {
    let (train, test) = small_dataset();
    let config = attacked_config(6, PartitionKind::Iid);
    let result = BflSimulation::new(config).run(&train, &test).unwrap();

    assert_eq!(result.detection.len(), 6);
    let (total, caught) = result.detection.totals();
    assert!(total >= 6, "at least one attacker per round");
    let rate = result.detection.average_detection_rate();
    assert!(
        rate >= 0.6,
        "detection rate should be high for blatant forgeries: {rate} ({caught}/{total})"
    );
}

#[test]
fn detection_works_under_non_iid_too_and_iid_is_not_worse() {
    let (train, test) = small_dataset();
    let non_iid = attacked_config(
        6,
        PartitionKind::ShardNonIid {
            shards_per_client: 2,
        },
    );
    let iid = attacked_config(6, PartitionKind::Iid);

    let non_iid_rate = BflSimulation::new(non_iid)
        .run(&train, &test)
        .unwrap()
        .detection
        .average_detection_rate();
    let iid_rate = BflSimulation::new(iid)
        .run(&train, &test)
        .unwrap()
        .detection
        .average_detection_rate();

    assert!(
        non_iid_rate > 0.3,
        "non-IID detection still works: {non_iid_rate}"
    );
    // The paper reports IID detection >= non-IID detection; allow a small
    // slack because these are short stochastic runs.
    assert!(
        iid_rate + 0.2 >= non_iid_rate,
        "IID ({iid_rate}) should not be substantially worse than non-IID ({non_iid_rate})"
    );
}

#[test]
fn discarding_protects_accuracy_against_poisoning() {
    let (train, test) = small_dataset();

    // Same attack, with and without the discard defence. A single attacker
    // per round uploads a hugely negatively-scaled update: under plain
    // averaging it drags the model backwards and stalls learning, while
    // Algorithm 2 + discard isolates it. At -8x the attacker's amplified
    // deviation dominates the plain average — the mean anchor points
    // nowhere near the honest cluster — so the defended run anchors on
    // the coordinate-wise median, which the attacker cannot move.
    let mut defended = attacked_config(6, PartitionKind::Iid);
    defended.anchor = AggregationAnchor::Median;
    defended.attack.kind = AttackKind::Scaling { factor: -8.0 };
    defended.attack.min_attackers = 1;
    defended.attack.max_attackers = 1;
    let mut undefended = defended;
    undefended.strategy = LowContributionStrategy::Keep;
    undefended.anchor = AggregationAnchor::Mean;
    undefended.fair_aggregation = false;

    let defended_result = BflSimulation::new(defended).run(&train, &test).unwrap();
    let undefended_result = BflSimulation::new(undefended).run(&train, &test).unwrap();

    let defended_acc = defended_result.final_accuracy().unwrap();
    let undefended_acc = undefended_result.final_accuracy().unwrap();
    assert!(
        defended_acc > undefended_acc,
        "discarding should protect the model: defended {defended_acc:.3} vs undefended {undefended_acc:.3}"
    );
    assert!(
        defended_acc > 0.5,
        "defended run should keep learning: accuracy {defended_acc:.3}"
    );
    let rate = defended_result.detection.average_detection_rate();
    assert!(
        rate > 0.8,
        "the median anchor should catch the -8x attacker nearly every round: {rate}"
    );
}

#[test]
fn robust_anchors_catch_the_scaling_attacker_that_defeats_the_mean() {
    let (train, test) = small_dataset();

    // The ROADMAP open item: a -8x scaling attacker against 9 honest
    // uploads corrupts the plain-average anchor itself, collapsing
    // Algorithm 2 into the keep-everyone fallback. Rebuilding the same
    // scenario with the builder and swapping only the anchor shows the
    // mean anchor failing and both robust anchors succeeding.
    let scenario_with = |anchor: AggregationAnchor| {
        let mut config = attacked_config(6, PartitionKind::Iid);
        config.attack.kind = AttackKind::Scaling { factor: -8.0 };
        config.attack.min_attackers = 1;
        config.attack.max_attackers = 1;
        config.anchor = anchor;
        Scenario::from_config(config).unwrap()
    };

    let mean_rate = scenario_with(AggregationAnchor::Mean)
        .run(&train, &test)
        .unwrap()
        .detection
        .average_detection_rate();
    let median_rate = scenario_with(AggregationAnchor::Median)
        .run(&train, &test)
        .unwrap()
        .detection
        .average_detection_rate();
    let trimmed_rate = scenario_with(AggregationAnchor::TrimmedMean { trim_ratio: 0.2 })
        .run(&train, &test)
        .unwrap()
        .detection
        .average_detection_rate();

    assert!(
        mean_rate < 0.5,
        "-8x corrupts the mean anchor, detection should mostly fail: {mean_rate}"
    );
    assert!(
        median_rate > 0.8,
        "the median anchor should catch the -8x attacker: {median_rate}"
    );
    assert!(
        trimmed_rate > 0.8,
        "the trimmed-mean anchor should catch the -8x attacker: {trimmed_rate}"
    );
}

#[test]
fn attackers_that_are_caught_earn_no_rewards_that_round() {
    let (train, test) = small_dataset();
    let config = attacked_config(5, PartitionKind::Iid);
    let result = BflSimulation::new(config).run(&train, &test).unwrap();

    // For every round, any attacker listed in the dropped set must not have
    // received a reward in that round's block.
    let chain = result.chain.as_ref().unwrap();
    for outcome in &result.outcomes {
        let block = chain.block_at(outcome.round as u64).unwrap();
        let rewarded: Vec<u64> = block
            .transactions
            .iter()
            .filter_map(|tx| match &tx.kind {
                fair_bfl::chain::TransactionKind::Reward { client_id, .. } => Some(*client_id),
                _ => None,
            })
            .collect();
        for dropped in &outcome.dropped {
            assert!(
                !rewarded.contains(dropped),
                "round {}: dropped client {} must not be rewarded",
                outcome.round,
                dropped
            );
        }
    }
}
