//! Integration tests for population-scale rounds (PR 7): lazy
//! O(participants) provisioning must reproduce the eager path bit for bit
//! on both engines and in both engine modes, and streaming Procedure-IV
//! aggregation must match the materialized fold exactly where exactness
//! is defined (detection, rewards, participants) and to float-reorder
//! tolerance on the parameters themselves.

mod common;

use common::{small_config, small_dataset};
use fair_bfl::core::{
    AggregationMode, AttackConfig, BflConfig, LowContributionStrategy, ProfileConfig,
    ProvisioningMode, Scenario, SimulationResult, StalenessPolicy, SyncMode,
};
use fair_bfl::fl::config::PartitionKind;
use fair_bfl::net::DelayDistribution;
use std::sync::Mutex;

/// The batched/reference engine switches are process-global; every test
/// in this binary serializes through this lock (one of them flips the
/// switches).
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Canonical digest over every artifact the experiments read — the same
/// construction the PR 5 goldens in `async_engine.rs` pin.
fn run_digest(result: &SimulationResult) -> String {
    let mut canon = String::new();
    if let Some(chain) = &result.chain {
        for block in chain.iter() {
            canon.push_str(&block.hash_hex());
            canon.push('\n');
        }
    }
    for r in &result.history.rounds {
        canon.push_str(&format!(
            "round {} acc {:016x} loss {:016x} delay {:016x} elapsed {:016x} n {}\n",
            r.round,
            r.accuracy.to_bits(),
            r.train_loss.to_bits(),
            r.round_delay_s.to_bits(),
            r.elapsed_s.to_bits(),
            r.participants
        ));
    }
    for row in &result.detection.rows {
        canon.push_str(&format!(
            "detect {} attackers {:?} dropped {:?}\n",
            row.round, row.attacker_ids, row.dropped_ids
        ));
    }
    for (client, total) in &result.reward_totals {
        canon.push_str(&format!("reward {client} {total}\n"));
    }
    for p in &result.final_params {
        canon.push_str(&format!("{:016x}", p.to_bits()));
    }
    let digest = fair_bfl::crypto::sha256::sha256(canon.as_bytes());
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// The small test configuration re-based onto an implicit partition, so
/// the same population can be provisioned eagerly or lazily.
fn implicit_config(rounds: usize) -> BflConfig {
    let mut config = small_config(rounds);
    config.fl.partition = PartitionKind::ImplicitIid {
        samples_per_client: 6,
    };
    config
}

fn run(config: BflConfig) -> SimulationResult {
    let (train, test) = small_dataset();
    Scenario::from_config(config)
        .unwrap()
        .run(&train, &test)
        .unwrap()
}

/// Lazy provisioning (budgeted client cache + lazy RSA key vault) must be
/// invisible in every artifact: history, block hashes, detection, rewards,
/// final parameters — under both the batched and the reference engines.
/// Signatures stay on so the lazy key vault is actually exercised, and
/// the cache budget sits at the selection size so eviction happens.
#[test]
fn lazy_provisioning_is_bit_identical_to_eager_in_both_engine_modes() {
    let _guard = lock();
    let eager = implicit_config(3);
    assert!(eager.verify_signatures, "the small config signs uploads");
    let mut lazy = eager;
    lazy.provisioning = ProvisioningMode::Lazy { cache_budget: 5 };

    for reference in [false, true] {
        fair_bfl::ml::engine::set_reference_mode(reference);
        fair_bfl::crypto::engine::set_reference_mode(reference);
        let eager_digest = run_digest(&run(eager));
        let lazy_digest = run_digest(&run(lazy));
        fair_bfl::ml::engine::set_reference_mode(false);
        fair_bfl::crypto::engine::set_reference_mode(false);
        assert_eq!(
            eager_digest, lazy_digest,
            "lazy provisioning diverged from the eager path (reference={reference})"
        );
    }
}

/// A flexible-quota population with stragglers and non-zero uplinks; the
/// event-driven selection, retry, and staleness paths must also be
/// provisioning-blind.
#[test]
fn lazy_provisioning_matches_eager_on_the_flexible_engine() {
    let _guard = lock();
    let mut eager = implicit_config(3);
    eager.fl.clients = 12;
    eager.fl.participation_ratio = 1.0;
    eager.verify_signatures = false;
    eager.sync = SyncMode::FlexibleQuota { quota: 9 };
    eager.staleness = StalenessPolicy::DecayedInclude { decay: 0.5 };
    eager.profiles = ProfileConfig {
        straggler_slowdown: 6.0,
        straggler_fraction: 0.25,
        uplink: DelayDistribution::Constant(0.05),
        ..ProfileConfig::default()
    };
    let mut lazy = eager;
    lazy.provisioning = ProvisioningMode::Lazy { cache_budget: 12 };

    assert_eq!(
        run_digest(&run(eager)),
        run_digest(&run(lazy)),
        "lazy provisioning diverged on the flexible engine"
    );
}

/// With every upload folding in one committee, streaming Procedure IV is
/// the materialized computation re-associated: participants, detection
/// rows, and the reward ledger must match exactly; the parameters may
/// differ only by float re-ordering (Σθᵢuᵢ/Σθᵢ versus per-upload
/// weighting), bounded here at 1e-9 relative.
#[test]
fn streaming_single_chunk_matches_materialized_procedure_iv() {
    let _guard = lock();
    let mut materialized = small_config(3);
    materialized.fl.participation_ratio = 1.0;
    materialized.verify_signatures = false;
    materialized.sync = SyncMode::FlexibleQuota { quota: 8 };
    materialized.staleness = StalenessPolicy::DecayedInclude { decay: 0.5 };
    materialized.strategy = LowContributionStrategy::Discard;
    materialized.attack = AttackConfig {
        enabled: true,
        ..AttackConfig::table2()
    };
    materialized.profiles = ProfileConfig {
        straggler_slowdown: 6.0,
        straggler_fraction: 0.25,
        uplink: DelayDistribution::Constant(0.05),
        ..ProfileConfig::default()
    };
    let mut streaming = materialized;
    streaming.aggregation = AggregationMode::Streaming { chunk: 64 };

    let base = run(materialized);
    let folded = run(streaming);

    assert_eq!(base.detection.rows, folded.detection.rows);
    assert_eq!(
        base.reward_totals, folded.reward_totals,
        "the integer reward ledger is order-free and must match exactly"
    );
    for (a, b) in base.history.rounds.iter().zip(folded.history.rounds.iter()) {
        assert_eq!(a.participants, b.participants, "round {}", a.round);
    }
    assert_eq!(base.final_params.len(), folded.final_params.len());
    for (i, (a, b)) in base
        .final_params
        .iter()
        .zip(folded.final_params.iter())
        .enumerate()
    {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "parameter {i}: {a} vs {b}"
        );
    }
}

/// The full PR 7 composition — implicit population, lazy provisioning,
/// multi-committee streaming fold — must be bit-exactly repeatable and
/// must still learn (finite loss, everyone admitted up to the quota).
#[test]
fn streaming_multi_chunk_composition_is_deterministic() {
    let _guard = lock();
    let mut config = implicit_config(3);
    config.fl.clients = 12;
    config.fl.participation_ratio = 1.0;
    config.verify_signatures = false;
    config.sync = SyncMode::FlexibleQuota { quota: 10 };
    config.staleness = StalenessPolicy::DecayedInclude { decay: 0.5 };
    config.provisioning = ProvisioningMode::Lazy { cache_budget: 12 };
    config.aggregation = AggregationMode::Streaming { chunk: 4 };
    config.profiles = ProfileConfig {
        straggler_slowdown: 6.0,
        straggler_fraction: 0.25,
        uplink: DelayDistribution::Constant(0.05),
        ..ProfileConfig::default()
    };

    let first = run(config);
    let second = run(config);
    assert_eq!(
        run_digest(&first),
        run_digest(&second),
        "streaming composition must be deterministic"
    );
    for round in &first.history.rounds {
        assert!(round.participants >= 10, "quota admits ten per round");
        assert!(round.train_loss.is_finite());
    }
    assert!(first.final_params.iter().all(|p| p.is_finite()));
}
