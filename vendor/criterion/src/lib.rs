//! Offline vendored shim of the `criterion` API surface the bench targets
//! use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`measurement_time`/`throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId` and `black_box`.
//!
//! Timing is a simple mean-of-samples wall-clock measurement printed to
//! stdout — no statistics, plots or comparisons. When invoked with
//! `--test` (as `cargo test` does for harness-less bench targets) each
//! benchmark body runs exactly once so test runs stay fast.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let test_mode = self.test_mode;
        run_benchmark(id, 10, test_mode, None, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (measurement repetitions).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim derives its own budget.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size,
            self.criterion.test_mode,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if test_mode {
        // `cargo test` smoke run: execute the body once and move on.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!("test {id} ... ok");
        return;
    }

    let samples = sample_size.max(1) as u64;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        best = best.min(bencher.elapsed);
    }
    let mean = total / samples as u32;
    let extra = match throughput {
        Some(Throughput::Bytes(bytes)) if mean.as_secs_f64() > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{id}: mean {mean:?}, best {best:?} over {samples} samples{extra}");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
