//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The build environment has no crates.io registry, so `syn`/`quote` are
//! unavailable; this macro parses the item declaration directly from the
//! `proc_macro` token stream. It supports exactly the shapes this
//! workspace derives on: non-generic structs (unit, tuple, named) and
//! enums whose variants are unit, tuple or struct-like. Representation
//! matches upstream serde's externally-tagged default, so round-trips
//! through the `serde_json` shim look like upstream JSON.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Advances past one type expression, stopping at a top-level `,` (angle
/// brackets tracked manually since they are plain puncts).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while let Some(token) = tokens.get(i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses `name: Type, ...` named fields from a brace group body.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect `:` then the type, then optionally `,`.
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!(
                "serde_derive shim: expected `:` after field `{}`",
                fields.last().unwrap()
            ),
        }
        i = skip_type(body, i);
        if let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

/// Counts top-level comma-separated entries of a paren group body.
fn tuple_arity(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        if i >= body.len() {
            break;
        }
        arity += 1;
        i = skip_type(body, i);
        i += 1; // past the comma, if any
    }
    arity
}

fn group_tokens(tree: &TokenTree) -> Vec<TokenTree> {
    match tree {
        TokenTree::Group(g) => g.stream().into_iter().collect(),
        _ => panic!("serde_derive shim: expected a delimited group"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (derive on `{name}`)");
        }
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                None => Shape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                Some(tree @ TokenTree::Group(g)) => match g.delimiter() {
                    Delimiter::Brace => Shape::Named(parse_named_fields(&group_tokens(tree))),
                    Delimiter::Parenthesis => Shape::Tuple(tuple_arity(&group_tokens(tree))),
                    other => {
                        panic!("serde_derive shim: unexpected struct body delimiter {other:?}")
                    }
                },
                other => panic!("serde_derive shim: unexpected struct body {other:?}"),
            };
            Item {
                name,
                kind: ItemKind::Struct(shape),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(tree @ TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    group_tokens(tree)
                }
                other => panic!("serde_derive shim: expected enum body, found {other:?}"),
            };
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs_and_vis(&body, j);
                let Some(TokenTree::Ident(vname)) = body.get(j) else {
                    break;
                };
                let vname = vname.to_string();
                j += 1;
                let shape = match body.get(j) {
                    Some(tree @ TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        Shape::Named(parse_named_fields(&group_tokens(tree)))
                    }
                    Some(tree @ TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        Shape::Tuple(tuple_arity(&group_tokens(tree)))
                    }
                    _ => Shape::Unit,
                };
                variants.push((vname, shape));
                // Skip to past the next top-level comma.
                while j < body.len() {
                    if let TokenTree::Punct(p) = &body[j] {
                        if p.as_char() == ',' {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            Item {
                name,
                kind: ItemKind::Enum(variants),
            }
        }
        other => panic!("serde_derive shim: cannot derive on `{other}` items"),
    }
}

fn serialize_struct_body(shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Obj(vec![{}])", items.join(", "))
        }
    }
}

fn deserialize_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("Ok({name})"),
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "match value {{ ::serde::Value::Arr(items) if items.len() == {n} => \
                 Ok({name}({fields})), other => Err(::serde::Error::custom(format!(\
                 \"expected {n}-element array for {name}, found {{}}\", other.kind()))) }}",
                fields = items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?"))
                .collect();
            format!("Ok({name} {{ {} }})", items.join(", "))
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[(String, Shape)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(vname, shape)| match shape {
            Shape::Unit => format!(
                "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
            ),
            Shape::Tuple(1) => format!(
                "{name}::{vname}(f0) => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), \
                 ::serde::Serialize::to_value(f0))])"
            ),
            Shape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                    .collect();
                format!(
                    "{name}::{vname}({binds}) => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), \
                     ::serde::Value::Arr(vec![{items}]))])",
                    binds = binders.join(", "),
                    items = items.join(", ")
                )
            }
            Shape::Named(fields) => {
                let binds = fields.join(", ");
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), \
                     ::serde::Value::Obj(vec![{items}]))])",
                    items = items.join(", ")
                )
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(", "))
}

fn deserialize_enum_body(name: &str, variants: &[(String, Shape)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, shape)| matches!(shape, Shape::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname})"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|(_, shape)| !matches!(shape, Shape::Unit))
        .map(|(vname, shape)| match shape {
            Shape::Tuple(1) => format!(
                "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?))"
            ),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                format!(
                    "\"{vname}\" => match inner {{ ::serde::Value::Arr(items) if items.len() == {n} => \
                     Ok({name}::{vname}({fields})), other => Err(::serde::Error::custom(format!(\
                     \"expected {n}-element array for {name}::{vname}, found {{}}\", other.kind()))) }}",
                    fields = items.join(", ")
                )
            }
            Shape::Named(fields) => {
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?"
                        )
                    })
                    .collect();
                format!(
                    "\"{vname}\" => Ok({name}::{vname} {{ {} }})",
                    items.join(", ")
                )
            }
            Shape::Unit => unreachable!(),
        })
        .collect();
    format!(
        "match value {{ \
           ::serde::Value::Str(tag) => match tag.as_str() {{ \
             {units} \
             other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))), \
           }}, \
           ::serde::Value::Obj(fields) if fields.len() == 1 => {{ \
             let (tag, inner) = &fields[0]; \
             match tag.as_str() {{ \
               {tagged} \
               other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))), \
             }} \
           }}, \
           other => Err(::serde::Error::custom(format!(\"expected {name} enum value, found {{}}\", other.kind()))), \
         }}",
        units = if unit_arms.is_empty() {
            String::new()
        } else {
            format!("{},", unit_arms.join(", "))
        },
        tagged = if tagged_arms.is_empty() {
            String::new()
        } else {
            format!("{},", tagged_arms.join(", "))
        },
    )
}

/// Derives the shim's `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(shape) => serialize_struct_body(shape),
        ItemKind::Enum(variants) => serialize_enum_body(&item.name, variants),
    };
    let out = format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}",
        name = item.name
    );
    out.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives the shim's `serde::Deserialize` (reconstruction from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(shape) => deserialize_struct_body(&item.name, shape),
        ItemKind::Enum(variants) => deserialize_enum_body(&item.name, variants),
    };
    let out = format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{ \
             #[allow(unused_variables)] let value = value; {body} \
           }} \
         }}",
        name = item.name
    );
    out.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
