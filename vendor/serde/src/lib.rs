//! Offline vendored shim of the `serde` API surface this workspace uses.
//!
//! The build environment has no crates.io registry, so the real serde
//! cannot be compiled. This shim keeps every `#[derive(Serialize,
//! Deserialize)]` call site working by modelling serialization as a
//! conversion through a self-describing [`Value`] tree (the only data
//! format the workspace uses is JSON, rendered by the sibling
//! `serde_json` shim). The derive macros live in `serde_derive` and are
//! re-exported here under the trait names, exactly like upstream serde.
//!
//! Externally tagged enum representation matches upstream conventions:
//! unit variants serialize as `"Name"`, newtype variants as
//! `{"Name": value}`, tuple variants as `{"Name": [..]}` and struct
//! variants as `{"Name": {..}}`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Self-describing data tree, the interchange type of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; not round-tripped through `f64`).
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered fields.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Numeric view as `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::Float(v) => Ok(v),
            Value::UInt(v) => Ok(v as f64),
            Value::Int(v) => Ok(v as f64),
            ref other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// Exact unsigned integer view.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::UInt(v) => Ok(v),
            Value::Int(v) if v >= 0 => Ok(v as u64),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
            ref other => Err(Error::custom(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Exact signed integer view.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::Int(v) => Ok(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Ok(v as i64),
            Value::Float(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Ok(v as i64)
            }
            ref other => Err(Error::custom(format!(
                "expected signed integer, found {}",
                other.kind()
            ))),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the interchange tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64()?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64()?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_f64()? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected char, found {}",
                other.kind()
            ))),
        }
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!(
                "expected 3-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

/// Map keys renderable as JSON object keys.
pub trait MapKey: Sized + Ord {
    /// Key to string.
    fn key_to_string(&self) -> String;
    /// Key from string.
    fn key_from_str(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn key_to_string(&self) -> String {
        self.clone()
    }
    fn key_from_str(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn key_to_string(&self) -> String { self.to_string() }
            fn key_from_str(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom("invalid integer map key"))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.key_to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let some = Some(9u8);
        assert_eq!(Option::<u8>::from_value(&some.to_value()).unwrap(), some);
        let pair = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&pair.to_value()).unwrap(), pair);
        let arr = [1u8, 2, 3];
        assert_eq!(<[u8; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let mut map = BTreeMap::new();
        map.insert(3u64, 0.5f64);
        assert_eq!(
            BTreeMap::<u64, f64>::from_value(&map.to_value()).unwrap(),
            map
        );
    }

    #[test]
    fn type_mismatches_error() {
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
        assert!(Value::Null.field("x").is_err());
        assert!(Value::Obj(vec![]).field("x").is_err());
    }
}
