//! JSON front-end for the vendored serde shim: renders `serde::Value`
//! trees as JSON text and parses JSON text back.
//!
//! Floats are written with Rust's shortest round-trip formatting (`{:?}`),
//! so `to_string` → `from_str` reproduces every finite `f64` bit-exactly —
//! several tests in the workspace rely on exact round-trips.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(v: f64, out: &mut String) -> Result<(), Error> {
    if !v.is_finite() {
        return Err(Error::custom("JSON cannot represent NaN or infinity"));
    }
    let rendered = format!("{v:?}");
    out.push_str(&rendered);
    Ok(())
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(*v, out)?,
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(value: &Value, out: &mut String, depth: usize) -> Result<(), Error> {
    match value {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(depth + 1));
                write_value_pretty(item, out, depth + 1)?;
            }
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(depth + 1));
                write_escaped(key, out);
                out.push_str(": ");
                write_value_pretty(item, out, depth + 1)?;
            }
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
        other => write_value(other, out)?,
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Value::Int(-(v as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found {other:?}"
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found {other:?}"
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_exactly() {
        for v in [
            0.0f64,
            1.5,
            -2.25,
            1e-300,
            123456.789,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{json}");
        }
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
    }

    #[test]
    fn nan_is_rejected() {
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\nwith \"quotes\" and \\ backslash\tτ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let parsed: Vec<u8> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(parsed, vec![1, 2, 3]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<u8>("[1] trailing").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u8, 2u8)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u8, u8)>>(&pretty).unwrap(), v);
    }
}
