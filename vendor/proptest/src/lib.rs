//! Offline vendored shim of the `proptest` API surface this workspace
//! uses: the `proptest!` macro with an optional `#![proptest_config(..)]`
//! header, range and `any::<T>()` strategies, `proptest::collection::vec`,
//! and the `prop_assert*` macros.
//!
//! The shim is a plain randomized tester: each property runs `cases`
//! times against a deterministic per-test RNG (seeded from the test
//! name), with no shrinking. `prop_assert*` map onto the std `assert*`
//! macros, so failures still point at the failing property with the
//! formatted message.

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
pub mod test_runner {
    /// Number of random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps offline CI fast while
            // still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for a named test, seeded from the name.
        pub fn for_test(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw below `n`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty integer range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (*self.start() as i128 + rng.below(span + 1) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    Strategy::sample(&(self.start..=<$t>::MAX), rng)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for "any value of `T`" (full-range draws).
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Builds the [`Any`] strategy, mirroring `proptest::prelude::any`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any {
            _marker: PhantomData,
        }
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_uint!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric values across a wide dynamic range.
            let magnitude = (rng.unit_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                magnitude
            } else {
                -magnitude
            }
        }
    }

    /// Constant strategy, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Vector strategy with a random length drawn from a range.
    pub struct VecStrategy<S: Strategy> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                Range {
                    start: self.size.start,
                    end: self.size.end,
                }
                .sample(rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `Vec` strategy: `len` drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test entry point. Supports the upstream surface this
/// workspace uses: an optional `#![proptest_config(expr)]` header and
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Case precondition: skips the current random case when the condition
/// does not hold (expands to a `continue` of the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Property assertion; maps onto `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; maps onto `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; maps onto `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_carries_cases() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert!(ProptestConfig::default().cases >= 32);
    }

    #[test]
    fn strategies_respect_ranges() {
        let mut rng = crate::test_runner::TestRng::for_test("strategies_respect_ranges");
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let xs = Strategy::sample(&crate::collection::vec(0u8..5, 2..6), &mut rng);
            assert!(xs.len() >= 2 && xs.len() < 6);
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_expands(a in 0usize..10, b in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b.len().min(4), b.len());
            prop_assert_ne!(a, 10);
        }
    }
}
