//! Offline vendored shim of the `rand` 0.8 API surface this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The build environment has no crates.io registry, so the real crate
//! cannot be compiled; this shim provides a deterministic, seedable
//! xoshiro256++ generator with the same call sites. Bit-streams differ
//! from upstream `rand`, which is fine here: every consumer in the
//! workspace only relies on seeded runs being reproducible against
//! themselves, never on golden values from the upstream generator.

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from the closed range `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unit-interval `f64` with 53 bits of precision, in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased draw from `[0, n)` via Lemire-style rejection.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low must be < high");
        low + unit_f64(rng) * (high - low)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: low must be <= high");
        low + unit_f64(rng) * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                let span = (high as i128 - low as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of the inferred type from the standard distribution
    /// (`f64` in `[0, 1)`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws uniformly from `range` (half-open `a..b` or closed `a..=b`).
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Fills a byte buffer with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let remainder = chunks.into_remainder();
        if !remainder.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            remainder.copy_from_slice(&bytes[..remainder.len()]);
        }
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded with
    /// SplitMix64. Fast, 256-bit state, passes BigCrush — more than enough
    /// for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_f64_stays_in_range_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let c = rng.gen_range(0usize..=4);
            assert!(c <= 4);
        }
    }

    #[test]
    fn gen_range_covers_small_int_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
